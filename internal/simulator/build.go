package simulator

import (
	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/reputation"
)

// BuildEngine constructs the reputation engine cfg selects, wired with the
// config's meter, registry and worker count — the exact construction the
// simulation loop performs. It is exported so other hosts of the scoring
// machinery (the resident service in internal/service, tools) score
// byte-identically to a batch run from the same configuration.
func BuildEngine(cfg Config) reputation.Engine {
	switch cfg.Engine {
	case EngineSummation:
		return reputation.Summation{}
	case EngineWeightedSum:
		return reputation.NewWeightedSum(cfg.Pretrusted)
	case EngineIterativeWeighted:
		iw := reputation.NewIterativeWeighted(cfg.Pretrusted)
		iw.Meter = cfg.Meter
		return iw
	case EngineSimilarity:
		sw := reputation.NewSimilarityWeighted()
		sw.Meter = cfg.Meter
		return sw
	default:
		et := reputation.NewEigenTrust(cfg.Pretrusted)
		et.Alpha = cfg.EigenTrustAlpha
		et.Workers = cfg.Workers
		et.IterObs = cfg.Obs.Histogram("eigentrust.iterations")
		// Per-run sparsity gauges (eigentrust.nnz, eigentrust.dangling_rows):
		// the matrix shape the sparse multiply exploits, refreshed on every
		// build.
		et.Obs = cfg.Obs
		// Server selection only needs score ordering, so the iteration can
		// stop at modest precision — the paper notes the matrix "normally
		// can converge within several iterations".
		et.Epsilon = 1e-4
		et.Meter = cfg.Meter
		return et
	}
}

// BuildPairDetector constructs the pairwise collusion detector cfg selects
// — nil for DetectorNone and for the group/Sybil detectors, which are not
// pairwise — wired with the config's thresholds, meter, tracer, registry
// and span tracer exactly as the simulation loop wires its own. Exported
// for the same reason as BuildEngine: a resident service built from the
// same configuration detects byte-identically to the batch run.
func BuildPairDetector(cfg Config) core.Detector {
	switch cfg.Detector {
	case DetectorBasic:
		d := core.NewBasic(cfg.thresholds())
		d.Meter = cfg.Meter
		d.Trace = cfg.Tracer
		d.Obs = cfg.Obs
		d.Spans = cfg.Spans
		return d
	case DetectorOptimized:
		d := core.NewOptimized(cfg.thresholds())
		d.Meter = cfg.Meter
		d.Trace = cfg.Tracer
		d.Obs = cfg.Obs
		d.Spans = cfg.Spans
		return d
	default:
		return nil
	}
}

// DetectionThresholds returns the detector thresholds the run will use:
// cfg.Thresholds, or core.DefaultThresholds when the field is zero —
// the same defaulting the detector builders apply.
func (c Config) DetectionThresholds() core.Thresholds {
	return c.thresholds()
}

// Package simulator implements the evaluation testbed of Section V: an
// unstructured interest-clustered P2P file-sharing network with pretrusted
// nodes, pairwise colluders and normal nodes, driven in simulation cycles
// of query cycles, with pluggable reputation engines and collusion
// detectors.
//
// The experiment loop follows the paper: in each query cycle every active
// peer issues one file request in one of its interests and picks its
// highest-reputed cluster neighbor with free capacity (ties broken
// uniformly); the server returns an authentic file with its good-behavior
// probability B and the client rates +1 or -1 accordingly; colluding
// pairs additionally exchange ten positive ratings per query cycle; global
// reputations are recomputed once per simulation cycle; and, when a
// detector is attached, detected colluders have their reputation forced to
// zero from then on.
package simulator

import (
	"fmt"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/overlay"
)

// EngineKind selects the reputation engine driving server selection.
type EngineKind int

// Engine kinds.
const (
	// EngineEigenTrust is the damped power-iteration EigenTrust algorithm
	// of reference [9] with a pretrust vector — the comparison system of
	// Figures 5-13. The damping alpha defaults to 0.05 in DefaultConfig
	// (see its comment).
	EngineEigenTrust EngineKind = iota
	// EngineSummation is the plain summation score (used when evaluating
	// the detectors standalone, Figure 8).
	EngineSummation
	// EngineWeightedSum is the flat Section V weighted formula with
	// reputation-independent weights, provided for ablations.
	EngineWeightedSum
	// EngineIterativeWeighted is the Section V weighted scoring with
	// reputation-dependent rater weights updated each cycle, provided for
	// ablations.
	EngineIterativeWeighted
	// EngineSimilarity is the PeerTrust-style feedback-similarity
	// credibility engine (references [26]/[21]), provided for ablations.
	EngineSimilarity
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case EngineEigenTrust:
		return "eigentrust"
	case EngineSummation:
		return "summation"
	case EngineIterativeWeighted:
		return "iterative-weighted"
	case EngineSimilarity:
		return "similarity-weighted"
	default:
		return "weighted-sum"
	}
}

// DetectorKind selects the collusion detector attached to the system.
type DetectorKind int

// Detector kinds.
const (
	// DetectorNone runs the reputation system bare.
	DetectorNone DetectorKind = iota
	// DetectorBasic is the unoptimized O(mn²) method.
	DetectorBasic
	// DetectorOptimized is the Formula (2) O(mn) method.
	DetectorOptimized
	// DetectorGroup is the strongly-connected-component group detector
	// (the paper's future-work extension to collectives of > 2 nodes).
	DetectorGroup
	// DetectorSybil is the one-way boosting-swarm detector (the paper's
	// future-work Sybil-attack case).
	DetectorSybil
)

// String implements fmt.Stringer.
func (k DetectorKind) String() string {
	switch k {
	case DetectorNone:
		return "none"
	case DetectorBasic:
		return "unoptimized"
	case DetectorGroup:
		return "group"
	case DetectorSybil:
		return "sybil"
	default:
		return "optimized"
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Seed makes the run reproducible; averaged experiments perturb it.
	Seed uint64
	// Overlay configures the interest-clustered network (paper: 200 nodes,
	// 20 categories, 1-5 interests, capacity 50).
	Overlay overlay.Config
	// Pretrusted lists pretrusted node indices (paper: IDs 1-3, here 0-2).
	Pretrusted []int
	// Colluders lists colluder node indices; they are paired consecutively
	// (paper: IDs 4-11, pairs (4,5), (6,7), ...).
	Colluders []int
	// CompromisedPairs lists (pretrusted, colluder) pairs that collude
	// mutually, reproducing the Figure 7/11 scenario.
	CompromisedPairs [][2]int
	// ColluderRings lists collusion collectives of three or more nodes
	// that flood ratings around a directed ring (member i rates member
	// i+1), the group structure pairwise detection cannot see. Members
	// must not appear in Colluders or Pretrusted.
	ColluderRings [][]int
	// SybilSwarms lists one-way boosting swarms: the first element of each
	// swarm is the beneficiary, the remaining elements are fake booster
	// identities that flood it with positive ratings every query cycle.
	// Members must not appear in any other role.
	SybilSwarms [][]int
	// Rivals lists badmouthing attacks: each pair is (attacker, victim),
	// with the attacker flooding the victim with negative ratings every
	// query cycle — the "rater 1" archetype of Figure 1(b). Attackers and
	// victims behave normally otherwise and may not hold other roles.
	Rivals [][2]int
	// ColluderGoodProb is B: the probability a colluder serves an
	// authentic file (paper: 0.6 and 0.2).
	ColluderGoodProb float64
	// NormalGoodProb is the probability a normal node serves an authentic
	// file (paper: 0.8).
	NormalGoodProb float64
	// ActiveProbRange bounds each node's per-query-cycle activity
	// probability (paper: [0.3, 0.8]).
	ActiveProbRange [2]float64
	// SimCycles is the number of simulation cycles (paper: 20).
	SimCycles int
	// QueryCycles is the number of query cycles per simulation cycle
	// (paper: 20).
	QueryCycles int
	// CollusionRatings is how many positive ratings each colluder sends
	// its partner per query cycle (paper: 10).
	CollusionRatings int
	// WindowCycles, when positive, evaluates reputations and detection
	// over a sliding window of the last WindowCycles simulation cycles
	// (the literal per-period-T semantics of Table I) instead of the
	// cumulative run history.
	WindowCycles int
	// CollusionStartCycle is the 1-based simulation cycle at which
	// colluders begin their rating floods; 0 or 1 means from the start.
	// Later onsets model attackers who first build honest reputations
	// (used by the detection-latency ablation).
	CollusionStartCycle int
	// ExplorationProb is the probability a client picks a uniformly random
	// capable neighbor instead of the highest-reputed one. The paper's
	// selection rule is strictly greedy (0), but greedy selection is not
	// ergodic: nodes stuck at reputation zero never serve again, so which
	// colluder pairs prosper becomes a race decided in the first cycle.
	// The EigenTrust paper itself prescribes ~10% probabilistic selection
	// for exactly this reason (Kamvar et al., Section 4.4), and the
	// figure harness uses 0.1 to make the Figure 5-12 shapes
	// seed-robust.
	ExplorationProb float64
	// Engine selects the reputation engine.
	Engine EngineKind
	// EigenTrustAlpha overrides the EigenTrust pretrust damping
	// (0 keeps the reputation package default).
	EigenTrustAlpha float64
	// Detector selects the collusion detector (DetectorNone for bare runs).
	Detector DetectorKind
	// Thresholds parameterize the detector; zero value selects
	// core.DefaultThresholds.
	Thresholds core.Thresholds
	// Workers sets the number of goroutines used by the parallelizable
	// stages inside a run — currently the EigenTrust matrix build and
	// power-iteration multiply. Values <= 1 select the sequential paths.
	// Every worker count produces bit-identical results; see the
	// reputation.EigenTrust.Workers documentation for why.
	Workers int
	// IngestShards, when >= 1, routes each cycle's ratings through the
	// internal/ingest sharded pipeline: ratings buffer during the query
	// cycles and flush in one batch partitioned across IngestShards writer
	// goroutines before reputations update. 0 keeps the legacy immediate
	// single-writer Record path. Ratings are only read at simulation-cycle
	// boundaries, so batching is observationally identical to immediate
	// recording, and the ingest determinism contract makes every value
	// >= 1 produce byte-identical ledgers, results and traces (values 0
	// and >= 1 differ only by the ingest_audit trace events the pipeline
	// emits).
	IngestShards int
	// FullDetect forces the pairwise detectors onto the from-scratch
	// Detect path every cycle, disabling the incremental memoization both
	// the cumulative and windowed paths otherwise use. The incremental
	// contract guarantees identical pairs, meter charges and audit events
	// either way — this knob exists to measure that claim (the A/B
	// equivalence tests and the -full-detect CLI flags run both sides) and
	// as an escape hatch, not because outputs differ.
	FullDetect bool
	// Meter, if non-nil, accumulates operation costs across the run.
	Meter *metrics.CostMeter
	// OnCycle, if non-nil, observes the simulation after every cycle's
	// reputation update and detection pass: the 1-based cycle number and
	// the current scores (detected colluders already zeroed). The slice is
	// reused between calls; copy it to retain.
	OnCycle func(cycle int, scores []float64)
	// OnRating, if non-nil, observes every rating as it is recorded —
	// the feed a live decentralized deployment would receive.
	OnRating func(rater, target, polarity int)
	// Tracer, if enabled, receives the structured run trace: a run_start
	// event, one cycle_summary per simulation cycle, and the decision
	// audits of the configured detector. Events are stamped with the
	// simulation cycle, never the wall clock, so a seeded run produces a
	// byte-identical trace on every replay. A nil tracer costs nothing.
	// Unlike OnCycle/OnRating, a tracer does not force averaged runs
	// sequential: RunAveragedParallel forks one buffered child per run and
	// joins them in run order.
	Tracer *obs.Tracer
	// Obs, if non-nil, collects run histograms: EigenTrust iteration
	// counts per scoring pass and the rating-pair frequency distribution
	// of the final ledger. Runs only record into histograms (atomic,
	// order-independent), never set gauges, so one registry may be shared
	// by concurrent averaged runs.
	Obs *obs.Registry
	// Spans, if enabled, receives the hierarchical span timeline: a run
	// span wrapping one cycle span per simulation cycle, each bracketing
	// the ingest, window.roll, reputation-engine and detect phases. Span
	// payloads are deterministic (cost-meter deltas, dirty-row counts,
	// memo hit/miss deltas), so a seeded run's timeline is byte-identical
	// on every replay, for every Workers and IngestShards value. The span
	// tracer is stateful and not concurrency-safe, so — unlike Tracer — an
	// attached one forces RunAveragedParallel sequential, like OnCycle.
	Spans *obs.SpanTracer
	// Progress, if non-nil, receives one per-cycle registry-delta line
	// after each cycle's detection pass — the streaming counterpart of the
	// post-run metrics export. Like Spans it forces averaged runs
	// sequential: the reporter diffs against its previous cycle's
	// snapshot, which interleaved runs would corrupt.
	Progress *obs.Progress
	// CycleTimer, if non-nil, brackets every per-cycle detection pass.
	// Implementations that read the wall clock live in internal/obs/prof,
	// outside the seeded trees; timing never feeds back into the
	// simulation or its trace.
	CycleTimer obs.TimerFunc
}

// SimThresholds returns detection thresholds calibrated to the Section V
// simulation rather than the Amazon trace. In the simulation the outside
// positive share b is about B (0.6 or 0.2) for colluders and about 0.8 for
// normal nodes, so T_b sits between them at 0.7; colluding partners rate
// each other all-positively, so T_a = 0.95 separates them from the 0.8
// background. T_N = 20 per period and T_R = 1 follow the paper.
func SimThresholds() core.Thresholds {
	return core.Thresholds{TR: 1, TN: 20, Ta: 0.95, Tb: 0.7}
}

// DefaultConfig returns the paper's Figure 5 setup: 200 nodes, pretrusted
// {0,1,2}, colluders {3..10}, B=0.6, EigenTrust, no detector.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Overlay:          overlay.DefaultConfig(),
		Pretrusted:       []int{0, 1, 2},
		Colluders:        []int{3, 4, 5, 6, 7, 8, 9, 10},
		ColluderGoodProb: 0.6,
		NormalGoodProb:   0.8,
		ActiveProbRange:  [2]float64{0.3, 0.8},
		SimCycles:        20,
		QueryCycles:      20,
		CollusionRatings: 10,
		ExplorationProb:  0.1,
		Engine:           EngineEigenTrust,
		// A damping of 0.05 gives colluding pairs the trust-sink
		// amplification the paper's Figure 5 exhibits (mutual local trust
		// retains (1-alpha) of inflow per iteration, so lower damping
		// amplifies pairs more) while keeping the pretrust floor strong
		// enough for Figures 6-7.
		EigenTrustAlpha: 0.05,
		Detector:        DetectorNone,
		Thresholds:      SimThresholds(),
	}
}

// Validate reports the first invalid parameter, if any.
func (c Config) Validate() error {
	if err := c.Overlay.Validate(); err != nil {
		return err
	}
	n := c.Overlay.Nodes
	seen := make(map[int]bool)
	for _, p := range c.Pretrusted {
		if p < 0 || p >= n {
			return fmt.Errorf("simulator: pretrusted node %d outside [0,%d)", p, n)
		}
		if seen[p] {
			return fmt.Errorf("simulator: node %d listed twice", p)
		}
		seen[p] = true
	}
	for _, cl := range c.Colluders {
		if cl < 0 || cl >= n {
			return fmt.Errorf("simulator: colluder %d outside [0,%d)", cl, n)
		}
		if seen[cl] {
			return fmt.Errorf("simulator: node %d listed twice", cl)
		}
		seen[cl] = true
	}
	if len(c.Colluders)%2 != 0 {
		return fmt.Errorf("simulator: %d colluders cannot be paired", len(c.Colluders))
	}
	for _, ring := range c.ColluderRings {
		if len(ring) < 3 {
			return fmt.Errorf("simulator: colluder ring %v has fewer than 3 members", ring)
		}
		for _, m := range ring {
			if m < 0 || m >= n {
				return fmt.Errorf("simulator: ring member %d outside [0,%d)", m, n)
			}
			if seen[m] {
				return fmt.Errorf("simulator: node %d listed twice", m)
			}
			seen[m] = true
		}
	}
	for _, swarm := range c.SybilSwarms {
		if len(swarm) < 3 {
			return fmt.Errorf("simulator: sybil swarm %v needs a beneficiary and at least 2 boosters", swarm)
		}
		for _, m := range swarm {
			if m < 0 || m >= n {
				return fmt.Errorf("simulator: swarm member %d outside [0,%d)", m, n)
			}
			if seen[m] {
				return fmt.Errorf("simulator: node %d listed twice", m)
			}
			seen[m] = true
		}
	}
	for _, rv := range c.Rivals {
		for _, m := range rv {
			if m < 0 || m >= n {
				return fmt.Errorf("simulator: rival participant %d outside [0,%d)", m, n)
			}
			if seen[m] {
				return fmt.Errorf("simulator: node %d listed twice", m)
			}
			seen[m] = true
		}
	}
	for _, cp := range c.CompromisedPairs {
		if !contains(c.Pretrusted, cp[0]) {
			return fmt.Errorf("simulator: compromised pair %v: %d is not pretrusted", cp, cp[0])
		}
		if !contains(c.Colluders, cp[1]) {
			return fmt.Errorf("simulator: compromised pair %v: %d is not a colluder", cp, cp[1])
		}
	}
	if c.ColluderGoodProb < 0 || c.ColluderGoodProb > 1 {
		return fmt.Errorf("simulator: ColluderGoodProb = %v outside [0,1]", c.ColluderGoodProb)
	}
	if c.NormalGoodProb < 0 || c.NormalGoodProb > 1 {
		return fmt.Errorf("simulator: NormalGoodProb = %v outside [0,1]", c.NormalGoodProb)
	}
	lo, hi := c.ActiveProbRange[0], c.ActiveProbRange[1]
	if lo < 0 || hi > 1 || hi < lo {
		return fmt.Errorf("simulator: ActiveProbRange = [%v,%v] invalid", lo, hi)
	}
	if c.SimCycles < 1 || c.QueryCycles < 1 {
		return fmt.Errorf("simulator: cycles = %d×%d, want >= 1 each", c.SimCycles, c.QueryCycles)
	}
	if c.CollusionRatings < 0 {
		return fmt.Errorf("simulator: CollusionRatings = %d, want >= 0", c.CollusionRatings)
	}
	if c.ExplorationProb < 0 || c.ExplorationProb > 1 {
		return fmt.Errorf("simulator: ExplorationProb = %v outside [0,1]", c.ExplorationProb)
	}
	if c.WindowCycles < 0 {
		return fmt.Errorf("simulator: WindowCycles = %d, want >= 0", c.WindowCycles)
	}
	if c.IngestShards < 0 {
		return fmt.Errorf("simulator: IngestShards = %d, want >= 0", c.IngestShards)
	}
	if c.CollusionStartCycle < 0 || c.CollusionStartCycle > c.SimCycles {
		return fmt.Errorf("simulator: CollusionStartCycle = %d outside [0,%d]",
			c.CollusionStartCycle, c.SimCycles)
	}
	if c.Detector != DetectorNone {
		if err := c.thresholds().Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (c Config) thresholds() core.Thresholds {
	if c.Thresholds == (core.Thresholds{}) {
		return core.DefaultThresholds()
	}
	return c.Thresholds
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

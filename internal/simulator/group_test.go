package simulator

import "testing"

// groupConfig plants a 3-ring and a 4-ring alongside the usual pairs.
func groupConfig() Config {
	cfg := DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.Colluders = []int{3, 4} // one classic pair
	cfg.ColluderRings = [][]int{{20, 21, 22}, {30, 31, 32, 33}}
	return cfg
}

func TestRingConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ColluderRings = [][]int{{1, 2}} },       // too small
		func(c *Config) { c.ColluderRings = [][]int{{-1, 20, 21}} }, // out of range
		func(c *Config) { c.ColluderRings = [][]int{{3, 20, 21}} },  // duplicate with colluders
		func(c *Config) { c.ColluderRings = [][]int{{0, 20, 21}} },  // duplicate with pretrusted
	}
	for i, mutate := range bad {
		cfg := groupConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad ring config %d accepted", i)
		}
	}
}

func TestGroupDetectorCatchesRings(t *testing.T) {
	cfg := groupConfig()
	cfg.Detector = DetectorGroup
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ring := range cfg.ColluderRings {
		for _, m := range ring {
			if !res.Flagged[m] {
				t.Fatalf("ring member %d not flagged", m)
			}
			if res.Scores[m] != 0 {
				t.Fatalf("ring member %d score %v, want 0", m, res.Scores[m])
			}
		}
	}
	// The classic pair is a 2-cycle and must also be caught.
	if !res.Flagged[3] || !res.Flagged[4] {
		t.Fatal("pair not flagged by group detector")
	}
	if len(res.DetectedGroups) < 3 {
		t.Fatalf("detected groups = %d, want >= 3", len(res.DetectedGroups))
	}
	// Pretrusted nodes must stay clean.
	for _, p := range cfg.Pretrusted {
		if res.Flagged[p] {
			t.Fatalf("pretrusted node %d falsely flagged", p)
		}
	}
}

// The paper's pairwise methods are blind to rings: they catch the planted
// pair but not the ring members, which keep their manufactured
// reputations. This is the gap the future-work extension closes.
func TestPairwiseDetectorMissesRings(t *testing.T) {
	cfg := groupConfig()
	cfg.Detector = DetectorOptimized
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged[3] || !res.Flagged[4] {
		t.Fatal("pairwise detector missed the mutual pair")
	}
	for _, ring := range cfg.ColluderRings {
		for _, m := range ring {
			if res.Flagged[m] {
				t.Fatalf("pairwise detector unexpectedly flagged ring member %d", m)
			}
		}
	}
}

// Ring members actually profit when their service is passable (B=0.6, the
// Figure 5 regime): without any detector their reputations rival or exceed
// normal nodes.
func TestRingsBoostReputationWithoutDetection(t *testing.T) {
	cfg := groupConfig()
	cfg.ColluderGoodProb = 0.6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	normalMean := 0.0
	count := 0
	for i := 40; i < cfg.Overlay.Nodes; i++ {
		normalMean += res.Scores[i]
		count++
	}
	normalMean /= float64(count)
	boosted := 0
	for _, ring := range cfg.ColluderRings {
		for _, m := range ring {
			if res.Scores[m] > normalMean {
				boosted++
			}
		}
	}
	if boosted < 4 {
		t.Fatalf("only %d/7 ring members above the normal mean %v", boosted, normalMean)
	}
}

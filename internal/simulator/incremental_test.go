package simulator

import (
	"bytes"
	"math"
	"testing"

	"github.com/p2psim/collusion/internal/obs"
)

// requireRunsMatch compares the detection observables of two runs: pairs
// with evidence, per-node flags, detection cycles, and bit-identical
// scores (the strongest equality claim and lint-clean).
func requireRunsMatch(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.DetectedPairs) != len(want.DetectedPairs) {
		t.Fatalf("%s: incremental found %d pairs, full %d\ninc  %+v\nfull %+v",
			name, len(got.DetectedPairs), len(want.DetectedPairs), got.DetectedPairs, want.DetectedPairs)
	}
	for i := range want.DetectedPairs {
		if got.DetectedPairs[i] != want.DetectedPairs[i] {
			t.Fatalf("%s: pair %d = %+v, full detection %+v", name, i, got.DetectedPairs[i], want.DetectedPairs[i])
		}
	}
	for i := range want.Flagged {
		if got.Flagged[i] != want.Flagged[i] {
			t.Fatalf("%s: Flagged[%d] = %v, full detection %v", name, i, got.Flagged[i], want.Flagged[i])
		}
		if got.DetectionCycle[i] != want.DetectionCycle[i] {
			t.Fatalf("%s: DetectionCycle[%d] = %d, full detection %d",
				name, i, got.DetectionCycle[i], want.DetectionCycle[i])
		}
		if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("%s: Scores[%d] = %v, full detection %v", name, i, got.Scores[i], want.Scores[i])
		}
	}
}

// TestIncrementalRunMatchesFullDetection pins the simulator's incremental
// wiring end to end. By default both the cumulative path (dirty rows from
// Ledger.DirtyTargets) and the windowed path (dirty rows from
// WindowLedger.Roll) take DetectIncremental; the same seeded run with
// FullDetect set re-screens every pair from scratch each cycle. Scores,
// flags, detection cycles and evidence must match exactly — any
// divergence means the memoized screens changed behavior.
func TestIncrementalRunMatchesFullDetection(t *testing.T) {
	for _, det := range []DetectorKind{DetectorBasic, DetectorOptimized} {
		for _, window := range []int{0, 4} {
			cfg := DefaultConfig()
			cfg.ColluderGoodProb = 0.2
			cfg.Detector = det
			cfg.WindowCycles = window

			inc, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			full := cfg
			full.FullDetect = true
			want, err := Run(full)
			if err != nil {
				t.Fatal(err)
			}

			name := det.String()
			if window > 0 {
				name += " windowed"
			}
			requireRunsMatch(t, name, inc, want)
		}
	}
}

// TestIncrementalRunTraceMatchesFullDetection extends the equivalence to
// the audit trail: with tracing enabled the memo cache is bypassed (every
// high pair is re-examined and audited in full-pass order), so a windowed
// incremental run's trace must be byte-identical to the FullDetect run's.
func TestIncrementalRunTraceMatchesFullDetection(t *testing.T) {
	traced := func(fullDetect bool) (*Result, []byte) {
		var sink obs.BufferSink
		cfg := tracedConfig()
		cfg.WindowCycles = 4
		cfg.FullDetect = fullDetect
		cfg.Tracer = obs.NewTracer(&sink)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, sink.Bytes()
	}
	inc, incTrace := traced(false)
	want, wantTrace := traced(true)
	if len(inc.DetectedPairs) == 0 {
		t.Fatal("windowed traced run detected no pairs; the test would be vacuous")
	}
	requireRunsMatch(t, "windowed traced", inc, want)
	if !bytes.Equal(incTrace, wantTrace) {
		t.Fatal("windowed incremental trace differs from the full-detection trace")
	}
}

// TestIncrementalHitMissCounters pins the memo telemetry: an incremental
// run with a registry attached records cache hits (unchanged pairs
// replayed) and misses (dirty pairs re-screened) on the cumulative path,
// misses plus the per-cycle dirty-row histogram on the windowed path
// (windowed screens concentrate on freshly-rated rows, so hits are rare
// there and not asserted), and a FullDetect run records neither counter.
func TestIncrementalHitMissCounters(t *testing.T) {
	counters := func(fullDetect bool, window int) (hits, misses int64, reg *obs.Registry) {
		reg = obs.NewRegistry(nil)
		// The default population is quiet enough that screened pairs
		// regularly survive a cycle untouched, so the cache actually hits;
		// tracedConfig's flood would dirty every screened row every cycle.
		cfg := DefaultConfig()
		cfg.ColluderGoodProb = 0.2
		cfg.Detector = DetectorOptimized
		cfg.WindowCycles = window
		cfg.FullDetect = fullDetect
		cfg.Obs = reg
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return reg.Counter("detect.incremental_hits").Value(),
			reg.Counter("detect.incremental_misses").Value(), reg
	}
	hits, misses, _ := counters(false, 0)
	if hits == 0 || misses == 0 {
		t.Fatalf("cumulative incremental run recorded hits=%d misses=%d, want both > 0", hits, misses)
	}
	_, misses, reg := counters(false, 8)
	if misses == 0 {
		t.Fatalf("windowed incremental run recorded no misses")
	}
	if h := reg.Histogram("window.dirty_rows_per_cycle"); h.Count() == 0 {
		t.Fatal("windowed run recorded no dirty_rows_per_cycle observations")
	}
	if hits, misses, _ := counters(true, 8); hits != 0 || misses != 0 {
		t.Fatalf("FullDetect run recorded hits=%d misses=%d, want 0/0", hits, misses)
	}
}

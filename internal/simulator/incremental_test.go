package simulator

import (
	"math"
	"testing"
)

// TestIncrementalRunMatchesFullDetection pins the simulator's incremental
// wiring end to end. A run on the cumulative ledger takes the
// DetectIncremental fast path; the same seeded run with WindowCycles
// covering every cycle takes the full-Detect path over a freshly merged
// window that contains the identical ratings. Scores, flags, detection
// cycles and evidence must match exactly — any divergence means the
// memoized screens changed behavior.
func TestIncrementalRunMatchesFullDetection(t *testing.T) {
	for _, det := range []DetectorKind{DetectorBasic, DetectorOptimized} {
		cfg := DefaultConfig()
		cfg.ColluderGoodProb = 0.2
		cfg.Detector = det

		inc, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}

		full := cfg
		// A window spanning the whole run merges to the cumulative ledger
		// each cycle, but its Ledger value changes every cycle, which keeps
		// the detector on the from-scratch path.
		full.WindowCycles = cfg.SimCycles + 1
		want, err := Run(full)
		if err != nil {
			t.Fatal(err)
		}

		name := det.String()
		if len(inc.DetectedPairs) != len(want.DetectedPairs) {
			t.Fatalf("%s: incremental found %d pairs, full %d\ninc  %+v\nfull %+v",
				name, len(inc.DetectedPairs), len(want.DetectedPairs), inc.DetectedPairs, want.DetectedPairs)
		}
		for i := range want.DetectedPairs {
			if inc.DetectedPairs[i] != want.DetectedPairs[i] {
				t.Fatalf("%s: pair %d = %+v, full detection %+v", name, i, inc.DetectedPairs[i], want.DetectedPairs[i])
			}
		}
		for i := range want.Flagged {
			if inc.Flagged[i] != want.Flagged[i] {
				t.Fatalf("%s: Flagged[%d] = %v, full detection %v", name, i, inc.Flagged[i], want.Flagged[i])
			}
			if inc.DetectionCycle[i] != want.DetectionCycle[i] {
				t.Fatalf("%s: DetectionCycle[%d] = %d, full detection %d",
					name, i, inc.DetectionCycle[i], want.DetectionCycle[i])
			}
			// Bit-identity, the strongest equality claim and lint-clean.
			if math.Float64bits(inc.Scores[i]) != math.Float64bits(want.Scores[i]) {
				t.Fatalf("%s: Scores[%d] = %v, full detection %v", name, i, inc.Scores[i], want.Scores[i])
			}
		}
	}
}

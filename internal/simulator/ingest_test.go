package simulator

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/p2psim/collusion/internal/obs"
)

// runWithShards executes tracedConfig with the given ingest shard count
// and window length, returning the result and the trace bytes.
func runWithShards(t *testing.T, shards, window int) (*Result, []byte) {
	t.Helper()
	var sink obs.BufferSink
	cfg := tracedConfig()
	cfg.IngestShards = shards
	cfg.WindowCycles = window
	cfg.Tracer = obs.NewTracer(&sink)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, sink.Bytes()
}

// requireResultsEqual compares every exported observable of two runs,
// including the full cumulative ledger.
func requireResultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Scores, want.Scores) {
		t.Fatalf("%s: scores differ", label)
	}
	if !reflect.DeepEqual(got.Flagged, want.Flagged) ||
		!reflect.DeepEqual(got.DetectedPairs, want.DetectedPairs) ||
		!reflect.DeepEqual(got.DetectionCycle, want.DetectionCycle) {
		t.Fatalf("%s: detection outcomes differ", label)
	}
	if got.RequestsTotal != want.RequestsTotal ||
		got.RequestsToColluders != want.RequestsToColluders ||
		got.RatingsRecorded != want.RatingsRecorded {
		t.Fatalf("%s: request/rating counters differ", label)
	}
	n := want.Ledger.Size()
	if got.Ledger.Size() != n {
		t.Fatalf("%s: ledger sizes differ", label)
	}
	for target := 0; target < n; target++ {
		gp, wp := got.Ledger.PairCountsOf(target), want.Ledger.PairCountsOf(target)
		if !reflect.DeepEqual(gp.Raters, wp.Raters) ||
			!reflect.DeepEqual(gp.Total, wp.Total) ||
			!reflect.DeepEqual(gp.Pos, wp.Pos) ||
			!reflect.DeepEqual(gp.Neg, wp.Neg) {
			t.Fatalf("%s: ledger row %d differs", label, target)
		}
	}
}

// TestIngestShardsByteIdenticalRun is the subsystem's simulator-level
// acceptance gate: every IngestShards value >= 1 must produce identical
// results AND byte-identical traces (the ingest_audit attributes are
// batch-derived, never scheduling-derived). IngestShards=0, the legacy
// immediate-record path, must produce identical results too — its trace
// just lacks the ingest_audit events.
func TestIngestShardsByteIdenticalRun(t *testing.T) {
	legacy, _ := runWithShards(t, 0, 0)
	ref, refTrace := runWithShards(t, 1, 0)
	requireResultsEqual(t, "shards=0 vs shards=1", legacy, ref)
	if !bytes.Contains(refTrace, []byte(`"type":"ingest_audit"`)) {
		t.Fatal("sharded run trace carries no ingest_audit events")
	}
	for _, k := range []int{2, 4, 8} {
		res, tr := runWithShards(t, k, 0)
		requireResultsEqual(t, "sharded run", res, ref)
		if !bytes.Equal(tr, refTrace) {
			t.Fatalf("shards=%d changed the trace bytes", k)
		}
	}
}

// TestIngestShardsWindowedRun covers the sharded-intake + delta-ring
// combination: windowed runs must also be invariant across shard counts,
// and the windowed result must match the legacy windowed path.
func TestIngestShardsWindowedRun(t *testing.T) {
	const window = 3
	legacy, _ := runWithShards(t, 0, window)
	ref, refTrace := runWithShards(t, 1, window)
	requireResultsEqual(t, "windowed shards=0 vs shards=1", legacy, ref)
	if ref.WindowDeltaRows == 0 {
		t.Fatal("windowed run reported zero delta rows")
	}
	for _, k := range []int{4, 8} {
		res, tr := runWithShards(t, k, window)
		requireResultsEqual(t, "windowed sharded run", res, ref)
		if !bytes.Equal(tr, refTrace) {
			t.Fatalf("windowed shards=%d changed the trace bytes", k)
		}
		if res.WindowDeltaRows != ref.WindowDeltaRows {
			t.Fatalf("windowed shards=%d: WindowDeltaRows = %d, want %d",
				k, res.WindowDeltaRows, ref.WindowDeltaRows)
		}
	}
}

// TestIngestShardsRecordsPerShardMetric checks the run-side intake
// metric: a sharded run observes once per shard per simulation cycle.
func TestIngestShardsRecordsPerShardMetric(t *testing.T) {
	reg := obs.NewRegistry(nil)
	cfg := tracedConfig()
	cfg.IngestShards = 4
	cfg.Obs = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("ingest.records_per_shard")
	if h.Count() != int64(4*cfg.SimCycles) {
		t.Fatalf("histogram count = %d, want %d (4 shards × %d cycles)",
			h.Count(), 4*cfg.SimCycles, cfg.SimCycles)
	}
	if h.Sum() != int64(res.RatingsRecorded) {
		t.Fatalf("histogram sum = %d, want %d ratings", h.Sum(), res.RatingsRecorded)
	}
}

package simulator

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/obs"
)

// tracedConfig is smallConfig with a detector attached and colluders
// aggressive enough that the trace contains flagged pairs.
func tracedConfig() Config {
	cfg := smallConfig()
	cfg.Pretrusted = nil
	cfg.Colluders = []int{0, 1, 2, 3, 4, 5, 6, 7}
	cfg.ColluderGoodProb = 0.2
	cfg.Engine = EngineSummation
	cfg.Detector = DetectorOptimized
	return cfg
}

// TestTraceByteIdentical pins the tentpole determinism claim: a seeded
// run produces the same trace bytes on every repeat, and the averaged
// engine produces the same trace bytes for every worker count.
func TestTraceByteIdentical(t *testing.T) {
	single := func() []byte {
		var sink obs.BufferSink
		cfg := tracedConfig()
		cfg.Tracer = obs.NewTracer(&sink)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return sink.Bytes()
	}
	a, b := single(), single()
	if len(a) == 0 {
		t.Fatal("traced run produced no events")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("repeated seeded runs produced different traces")
	}

	averaged := func(workers int) []byte {
		var sink obs.BufferSink
		cfg := tracedConfig()
		cfg.Tracer = obs.NewTracer(&sink)
		if _, err := RunAveragedParallel(cfg, 4, workers); err != nil {
			t.Fatal(err)
		}
		return sink.Bytes()
	}
	w1, w4 := averaged(1), averaged(4)
	if len(w1) == 0 {
		t.Fatal("averaged run produced no events")
	}
	if !bytes.Equal(w1, w4) {
		t.Fatal("worker count changed the averaged trace bytes")
	}
}

// brokenSink fails every write, simulating a full disk under -trace.
type brokenSink struct{}

var errDiskFull = errors.New("disk full")

func (brokenSink) WriteTrace(p []byte) error { return errDiskFull }
func (brokenSink) Close() error              { return nil }

// TestTraceSinkFailureSurfaces pins the failure contract: a failing
// trace sink turns into a run error instead of a silently truncated
// trace, for both the single-run and the parallel averaged paths.
func TestTraceSinkFailureSurfaces(t *testing.T) {
	cfg := tracedConfig()
	cfg.Tracer = obs.NewTracer(brokenSink{})
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "trace sink failed") {
		t.Fatalf("single run error = %v, want trace sink failure", err)
	}
	// Parallel runs buffer per run and hit the broken sink at Join.
	if _, err := RunAveragedParallel(cfg, 2, 2); err == nil || !strings.Contains(err.Error(), "trace sink failed") {
		t.Fatalf("averaged run error = %v, want trace sink failure", err)
	}
}

// TestAuditExplainsEveryFlaggedPair pins the audit-trail completeness
// criterion: every pair the run reports as detected has a pair_audit
// event in the trace with gate "flagged" — on the cumulative incremental
// path and on the windowed incremental path (where detection runs over
// the in-place-mutating merged window driven by Roll's dirty set) alike.
func TestAuditExplainsEveryFlaggedPair(t *testing.T) {
	for _, window := range []int{0, 4} {
		var sink obs.BufferSink
		cfg := tracedConfig()
		cfg.WindowCycles = window
		cfg.Tracer = obs.NewTracer(&sink)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.DetectedPairs) == 0 {
			t.Fatalf("window=%d: run detected no pairs; the test would be vacuous", window)
		}
		type audit struct {
			Type    string `json:"type"`
			I       int    `json:"i"`
			J       int    `json:"j"`
			Flagged bool   `json:"flagged"`
		}
		flagged := map[[2]int]bool{}
		for _, line := range bytes.Split(sink.Bytes(), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var a audit
			if err := json.Unmarshal(line, &a); err != nil {
				t.Fatalf("window=%d: trace line %q: %v", window, line, err)
			}
			if a.Type == "pair_audit" && a.Flagged {
				flagged[[2]int{a.I, a.J}] = true
			}
		}
		for _, e := range res.DetectedPairs {
			if !flagged[[2]int{e.I, e.J}] {
				t.Errorf("window=%d: detected pair (%d,%d) has no flagged pair_audit event", window, e.I, e.J)
			}
		}
	}
}

package simulator

import (
	"testing"

	"github.com/p2psim/collusion/internal/analysis"
	"github.com/p2psim/collusion/internal/trace"
)

func rivalConfig() Config {
	cfg := DefaultConfig()
	cfg.Colluders = nil
	cfg.Rivals = [][2]int{{20, 21}} // 20 badmouths 21
	return cfg
}

func TestRivalConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Rivals = [][2]int{{-1, 21}} },
		func(c *Config) { c.Rivals = [][2]int{{20, 999}} },
		func(c *Config) { c.Rivals = [][2]int{{0, 21}} },  // pretrusted reused
		func(c *Config) { c.Rivals = [][2]int{{20, 20}} }, // self
	}
	for i, mutate := range bad {
		cfg := rivalConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad rival config %d accepted", i)
		}
	}
}

// Badmouthing floods devastate the victim's summation reputation, and the
// Section III frequency filter exposes the attack: the rival pair crosses
// the 20-ratings threshold with an in-pair positive share of zero.
func TestRivalFloodExposedByFrequencyFilter(t *testing.T) {
	cfg := rivalConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attacker, victim := 20, 21
	if res.Ledger.SummationScore(victim) >= 0 {
		t.Fatalf("victim summation = %d, expected driven negative",
			res.Ledger.SummationScore(victim))
	}

	// Convert the ledger's attacker→victim relationship into a trace and
	// run the Section III filter: the rival must surface with a = 0.
	tr := &trace.Trace{}
	for target := 0; target < cfg.Overlay.Nodes; target++ {
		for rater := 0; rater < cfg.Overlay.Nodes; rater++ {
			pos := res.Ledger.PairPositive(target, rater)
			neg := res.Ledger.PairNegative(target, rater)
			for k := 0; k < pos; k++ {
				tr.Ratings = append(tr.Ratings, trace.Rating{
					Rater: trace.NodeID(rater), Target: trace.NodeID(target), Score: 5})
			}
			for k := 0; k < neg; k++ {
				tr.Ratings = append(tr.Ratings, trace.Rating{
					Rater: trace.NodeID(rater), Target: trace.NodeID(target), Score: 1})
			}
		}
	}
	filter := analysis.SuspiciousPairs(tr, 20)
	found := false
	for _, p := range filter.Pairs {
		if p.Rater == trace.NodeID(attacker) && p.Target == trace.NodeID(victim) {
			found = true
			if p.A != 0 {
				t.Fatalf("rival in-pair positive share = %v, want 0", p.A)
			}
		}
	}
	if !found {
		t.Fatal("frequency filter did not surface the rival pair")
	}
}

// Rival flooding must not trip the collusion detectors: badmouthing is
// not mutual positive boosting.
func TestRivalsNotFlaggedAsColluders(t *testing.T) {
	cfg := rivalConfig()
	cfg.Detector = DetectorOptimized
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flagged[20] || res.Flagged[21] {
		t.Fatal("rival participants flagged as colluders")
	}
}

package simulator

import (
	"fmt"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/ingest"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/overlay"
	"github.com/p2psim/collusion/internal/parallel"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

// Result captures one simulation run.
type Result struct {
	// Scores holds each node's final reputation under the configured
	// engine, with detected colluders forced to zero.
	Scores []float64
	// Flagged marks nodes detected as colluders at any point in the run.
	Flagged []bool
	// DetectedPairs aggregates every distinct pair the detector reported.
	DetectedPairs []core.Evidence
	// DetectedGroups aggregates the collectives the group detector
	// reported (empty unless Config.Detector is DetectorGroup).
	DetectedGroups []core.Group
	// DetectedSwarms aggregates the boosting swarms the Sybil detector
	// reported (empty unless Config.Detector is DetectorSybil).
	DetectedSwarms []core.SybilFinding
	// RequestsTotal counts all served file requests.
	RequestsTotal int
	// RequestsToColluders counts requests served by configured colluders
	// (including compromised pretrusted nodes).
	RequestsToColluders int
	// RatingsRecorded counts ledger entries written during the run.
	RatingsRecorded int
	// DetectionCycle[i] is the 1-based simulation cycle in which node i
	// was first flagged, or 0 if it never was — the detection-latency
	// measure used by the threshold ablation.
	DetectionCycle []int
	// Ledger is the cumulative period ledger, exposed for post-hoc
	// analysis and for feeding the decentralized detector.
	Ledger *reputation.Ledger
	// WindowDeltaRows is how many target rows the final simulation cycle
	// touched in the sliding window (0 for cumulative runs) — the
	// window.delta_rows gauge the CLIs export after a windowed run, and a
	// direct measure of how much work the delta-ring saved versus a full
	// window re-merge.
	WindowDeltaRows int
}

// PercentToColluders returns the share of requests served by colluders.
func (r *Result) PercentToColluders() float64 {
	if r.RequestsTotal == 0 {
		return 0
	}
	return float64(r.RequestsToColluders) / float64(r.RequestsTotal)
}

// Run executes one deterministic simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	tr := cfg.Tracer
	if tr.Enabled() {
		tr.SetCycle(0)
		tr.Emit("run_start",
			obs.I64("seed", int64(cfg.Seed)),
			obs.Int("nodes", cfg.Overlay.Nodes),
			obs.Str("engine", cfg.Engine.String()),
			obs.Str("detector", cfg.Detector.String()),
			obs.Int("sim_cycles", cfg.SimCycles),
			obs.Int("query_cycles", cfg.QueryCycles))
	}
	sp := cfg.Spans
	engineSpan := cfg.Engine.String()
	if sp.Enabled() {
		sp.SetCycle(0)
		sp.Begin("run",
			obs.I64("seed", int64(cfg.Seed)),
			obs.Int("nodes", cfg.Overlay.Nodes),
			obs.Str("engine", engineSpan),
			obs.Str("detector", cfg.Detector.String()))
	}
	prevRequests, prevRatings, prevFlags := 0, 0, 0
	for cycle := 1; cycle <= cfg.SimCycles; cycle++ {
		s.cycle = cycle
		tr.SetCycle(cycle)
		if sp.Enabled() {
			sp.SetCycle(cycle)
			sp.Begin("cycle")
		}
		for q := 0; q < cfg.QueryCycles; q++ {
			s.queryCycle()
		}
		if err := s.flushRatings(); err != nil {
			return nil, err
		}
		if s.win != nil {
			s.winDirty = s.win.Roll()
		}
		if sp.Enabled() {
			sp.Begin(engineSpan)
		}
		s.updateReputations()
		if sp.Enabled() {
			sp.End(engineSpan, s.engineSpanAttrs()...)
		}
		s.detect()
		if tr.Enabled() {
			flags := countTrue(s.flagged)
			tr.Emit("cycle_summary",
				obs.Int("requests", s.requestsTotal-prevRequests),
				obs.Int("ratings", s.ratings-prevRatings),
				obs.Int("new_flags", flags-prevFlags),
				obs.Int("flagged_total", flags))
			prevRequests, prevRatings, prevFlags = s.requestsTotal, s.ratings, flags
		}
		if sp.Enabled() {
			sp.End("cycle",
				obs.Int("requests", s.requestsTotal),
				obs.Int("ratings", s.ratings),
				obs.Int("flagged", countTrue(s.flagged)))
		}
		if cfg.OnCycle != nil {
			cfg.OnCycle(cycle, s.scores)
		}
		cfg.Progress.Cycle(cycle)
	}
	s.observePairFrequencies()
	if sp.Enabled() {
		sp.End("run",
			obs.Int("requests", s.requestsTotal),
			obs.Int("ratings", s.ratings),
			obs.Int("flagged", countTrue(s.flagged)))
	}
	if err := tr.Err(); err != nil {
		return nil, fmt.Errorf("simulator: trace sink failed: %w", err)
	}
	if err := sp.Err(); err != nil {
		return nil, fmt.Errorf("simulator: span sink failed: %w", err)
	}
	if err := cfg.Progress.Err(); err != nil {
		return nil, fmt.Errorf("simulator: progress sink failed: %w", err)
	}
	return s.result(), nil
}

// state is the mutable simulation state.
type state struct {
	cfg    Config
	net    *overlay.Network
	r      *rng.Rand
	ledger *reputation.Ledger
	win    *ingest.WindowLedger // non-nil when WindowCycles > 0
	// winDirty is the dirty set the most recent Roll reported: the merged
	// window rows this cycle changed, feeding windowed incremental
	// detection.
	winDirty []int
	engine   reputation.Engine
	det      core.Detector

	// ingester and batch implement the sharded intake path: when
	// cfg.IngestShards >= 1, record() buffers into batch and flushRatings
	// folds the whole cycle through the ingester at the cycle boundary.
	ingester *ingest.Ingester
	batch    []ingest.Rating

	activeProb []float64
	goodProb   []float64
	isColluder []bool // includes compromised pretrusted nodes
	partners   [][]int

	scores     []float64
	flagged    []bool
	pairs      map[[2]int]core.Evidence
	groups     []core.Group
	groupD     *core.GroupDetector
	swarms     []core.SybilFinding
	sybilD     *core.SybilDetector
	ringEdges  [][2]int
	rivalEdges [][2]int
	detCycle   []int
	cycle      int // current 1-based simulation cycle

	capacity []int // remaining capacity within the current query cycle

	requestsTotal       int
	requestsToColluders int
	ratings             int
}

func newState(cfg Config) (*state, error) {
	net, err := overlay.New(overlay.Config{
		Seed:               cfg.Seed,
		Nodes:              cfg.Overlay.Nodes,
		InterestCategories: cfg.Overlay.InterestCategories,
		InterestsPerNode:   cfg.Overlay.InterestsPerNode,
		Capacity:           cfg.Overlay.Capacity,
	})
	if err != nil {
		return nil, err
	}
	n := net.Size()
	s := &state{
		cfg:        cfg,
		net:        net,
		r:          rng.New(cfg.Seed).Child("simulator"),
		ledger:     reputation.NewLedger(n),
		activeProb: make([]float64, n),
		goodProb:   make([]float64, n),
		isColluder: make([]bool, n),
		partners:   make([][]int, n),
		scores:     make([]float64, n),
		flagged:    make([]bool, n),
		pairs:      make(map[[2]int]core.Evidence),
		capacity:   make([]int, n),
		detCycle:   make([]int, n),
	}
	if cfg.WindowCycles > 0 {
		s.win = ingest.NewWindowLedger(n, cfg.WindowCycles)
		s.win.Obs = cfg.Obs
		s.win.Spans = cfg.Spans
	}
	if cfg.IngestShards >= 1 {
		s.ingester = &ingest.Ingester{
			Shards: cfg.IngestShards,
			Obs:    cfg.Obs,
			Tracer: cfg.Tracer,
			Spans:  cfg.Spans,
		}
	}

	for i := 0; i < n; i++ {
		s.activeProb[i] = s.r.Float64Range(cfg.ActiveProbRange[0], cfg.ActiveProbRange[1])
		s.goodProb[i] = cfg.NormalGoodProb
	}
	for _, p := range cfg.Pretrusted {
		s.goodProb[p] = 1.0 // pretrusted nodes always serve authentic files
	}
	for _, c := range cfg.Colluders {
		s.goodProb[c] = cfg.ColluderGoodProb
		s.isColluder[c] = true
	}
	// Pair colluders consecutively, as in the paper's setup.
	for i := 0; i+1 < len(cfg.Colluders); i += 2 {
		a, b := cfg.Colluders[i], cfg.Colluders[i+1]
		s.partners[a] = append(s.partners[a], b)
		s.partners[b] = append(s.partners[b], a)
	}
	// Ring collectives: member i floods member i+1 (directed ring).
	for _, ring := range cfg.ColluderRings {
		for i, m := range ring {
			s.goodProb[m] = cfg.ColluderGoodProb
			s.isColluder[m] = true
			next := ring[(i+1)%len(ring)]
			s.ringEdges = append(s.ringEdges, [2]int{m, next})
		}
	}
	// Sybil swarms: fake identities flood the beneficiary one-way. The
	// beneficiary serves with colluder quality; the fakes behave normally
	// when (rarely) chosen as servers. All participants count as
	// colluders in request accounting.
	for _, swarm := range cfg.SybilSwarms {
		beneficiary := swarm[0]
		s.goodProb[beneficiary] = cfg.ColluderGoodProb
		s.isColluder[beneficiary] = true
		for _, fake := range swarm[1:] {
			s.isColluder[fake] = true
			s.ringEdges = append(s.ringEdges, [2]int{fake, beneficiary})
		}
	}
	// Rival attackers flood their victims with negatives each query cycle.
	for _, rv := range cfg.Rivals {
		s.rivalEdges = append(s.rivalEdges, rv)
	}
	// Compromised pretrusted nodes behave as colluders toward their
	// partner (and are counted as colluders in request accounting).
	for _, cp := range cfg.CompromisedPairs {
		p, c := cp[0], cp[1]
		s.partners[p] = append(s.partners[p], c)
		s.partners[c] = append(s.partners[c], p)
		s.isColluder[p] = true
	}

	s.engine = BuildEngine(cfg)

	switch cfg.Detector {
	case DetectorBasic, DetectorOptimized:
		s.det = BuildPairDetector(cfg)
	case DetectorGroup:
		d := core.NewGroupDetector(cfg.thresholds())
		d.Meter = cfg.Meter
		d.Trace = cfg.Tracer
		s.groupD = d
	case DetectorSybil:
		d := core.NewSybilDetector(cfg.thresholds())
		d.Meter = cfg.Meter
		d.Trace = cfg.Tracer
		s.sybilD = d
	}
	return s, nil
}

// queryCycle runs one query cycle: capacity resets, every active node
// issues one request, and colluding pairs exchange their rating floods.
func (s *state) queryCycle() {
	for i := range s.capacity {
		s.capacity[i] = s.cfg.Overlay.Capacity
	}
	n := s.net.Size()
	for node := 0; node < n; node++ {
		if !s.r.Bool(s.activeProb[node]) {
			continue
		}
		s.issueRequest(node)
	}
	if s.cfg.CollusionStartCycle > 1 && s.cycle < s.cfg.CollusionStartCycle {
		return // collusion has not started yet
	}
	// Collusion flood: partners rate each other positively.
	for node := 0; node < n; node++ {
		for _, partner := range s.partners[node] {
			if node < partner { // handle each pair once per cycle
				for k := 0; k < s.cfg.CollusionRatings; k++ {
					s.record(node, partner, 1)
					s.record(partner, node, 1)
				}
			}
		}
	}
	// Ring collectives flood along their directed edges.
	for _, e := range s.ringEdges {
		for k := 0; k < s.cfg.CollusionRatings; k++ {
			s.record(e[0], e[1], 1)
		}
	}
	// Rival attackers flood their victims with negatives.
	for _, e := range s.rivalEdges {
		for k := 0; k < s.cfg.CollusionRatings; k++ {
			s.record(e[0], e[1], -1)
		}
	}
}

// issueRequest lets a node query one of its interest clusters and selects
// the highest-reputed neighbor with available capacity; ties are broken
// uniformly at random.
func (s *state) issueRequest(client int) {
	category := s.net.RandomInterest(client, s.r)
	neighbors := s.net.Neighbors(client, category)
	if s.cfg.ExplorationProb > 0 && s.r.Bool(s.cfg.ExplorationProb) {
		s.exploreRequest(client, neighbors)
		return
	}
	best := -1.0
	var candidates []int
	for _, nb := range neighbors {
		if s.capacity[nb] <= 0 {
			continue
		}
		switch {
		case s.scores[nb] > best:
			best = s.scores[nb]
			candidates = candidates[:0]
			candidates = append(candidates, nb)
		//colsimlint:ignore floateq exact tie on values copied from the same slice, not recomputed
		case s.scores[nb] == best:
			candidates = append(candidates, nb)
		}
	}
	if len(candidates) == 0 {
		return // nobody can serve this cycle
	}
	server := candidates[s.r.Intn(len(candidates))]
	s.serve(client, server)
}

// exploreRequest picks a uniformly random capable neighbor (probabilistic
// selection, Kamvar et al. Section 4.4), keeping the request dynamics
// ergodic.
func (s *state) exploreRequest(client int, neighbors []int) {
	capable := make([]int, 0, len(neighbors))
	for _, nb := range neighbors {
		if s.capacity[nb] > 0 {
			capable = append(capable, nb)
		}
	}
	if len(capable) == 0 {
		return
	}
	s.serve(client, capable[s.r.Intn(len(capable))])
}

// serve delivers one request: the server provides an authentic file with
// its good-behavior probability and the client rates +1 / -1 accordingly,
// as in Amazon, Overstock and the paper's reputation model.
func (s *state) serve(client, server int) {
	s.capacity[server]--
	s.requestsTotal++
	if s.isColluder[server] {
		s.requestsToColluders++
	}
	if s.r.Bool(s.goodProb[server]) {
		s.record(client, server, 1)
	} else {
		s.record(client, server, -1)
	}
}

// record accepts one rating. Observers fire and counters advance at
// record time in both modes; only the ledger write is deferred on the
// sharded path. Nothing reads the ledgers between records — scores and
// detection run at simulation-cycle boundaries, after flushRatings — so
// the two modes are observationally identical.
func (s *state) record(rater, target, polarity int) {
	if s.ingester != nil {
		s.batch = append(s.batch, ingest.Rating{
			Rater:    int32(rater),
			Target:   int32(target),
			Polarity: int8(polarity),
		})
	} else {
		s.ledger.Record(rater, target, polarity)
		if s.win != nil {
			s.win.Record(rater, target, polarity)
		}
	}
	if s.cfg.OnRating != nil {
		s.cfg.OnRating(rater, target, polarity)
	}
	s.ratings++
}

// flushRatings folds the cycle's buffered ratings through the sharded
// ingester into the cumulative ledger (and the window's open period when
// one is configured). A no-op on the legacy immediate-record path.
func (s *state) flushRatings() error {
	if s.ingester == nil || len(s.batch) == 0 {
		return nil
	}
	dsts := []*reputation.Ledger{s.ledger}
	if s.win != nil {
		dsts = append(dsts, s.win.Current())
	}
	err := s.ingester.Ingest(s.batch, dsts...)
	s.batch = s.batch[:0]
	return err
}

// periodLedger returns the ledger detection and scoring operate on: the
// sliding window when configured, otherwise the cumulative history.
func (s *state) periodLedger() *reputation.Ledger {
	if s.win != nil {
		return s.win.Window()
	}
	return s.ledger
}

// updateReputations recomputes global scores with the configured engine
// and keeps detected colluders at zero.
func (s *state) updateReputations() {
	s.scores = s.engine.Scores(s.periodLedger())
	for i, f := range s.flagged {
		if f {
			s.scores[i] = 0
		}
	}
}

// engineSpanAttrs returns the engine span's payload attributes. For
// EigenTrust they expose the cycle's convergence and the sparsity the
// sparse multiply exploited (positive-trust edges and dangling rows); all
// three depend only on the ledger contents and the seeded dynamics, never
// on worker or shard counts, so the span timeline stays byte-identical.
func (s *state) engineSpanAttrs() []obs.Attr {
	et, ok := s.engine.(*reputation.EigenTrust)
	if !ok {
		return nil
	}
	return []obs.Attr{
		obs.Int("iterations", et.Iterations()),
		obs.Int("nnz", et.NNZ()),
		obs.Int("dangling_rows", et.DanglingRows()),
	}
}

// detect runs the detection pass, bracketed by the configured cycle timer
// when one is attached.
func (s *state) detect() {
	if s.cfg.CycleTimer != nil {
		stop := s.cfg.CycleTimer()
		s.runDetection()
		stop()
		return
	}
	s.runDetection()
}

// observePairFrequencies records every nonzero rating-pair count of the
// cumulative ledger into the registry's pair-frequency histogram — the
// distribution behind the T_N threshold choice (colluding pairs sit far in
// the right tail; organic pairs near 1).
func (s *state) observePairFrequencies() {
	h := s.cfg.Obs.Histogram("ratings.pair_frequency")
	if h == nil {
		return
	}
	n := s.ledger.Size()
	for i := 0; i < n; i++ {
		pc := s.ledger.PairCountsOf(i)
		for k := range pc.Raters {
			h.Observe(int64(pc.Total[k]))
		}
	}
}

func countTrue(xs []bool) int {
	n := 0
	for _, x := range xs {
		if x {
			n++
		}
	}
	return n
}

// runDetection executes the configured detector over the cumulative period
// ledger and zeroes newly detected colluders.
func (s *state) runDetection() {
	if s.groupD == nil && s.det == nil && s.sybilD == nil {
		return
	}
	period := s.periodLedger()
	if s.sybilD != nil {
		res := s.sybilD.Detect(period)
		for _, f := range res.Findings {
			if !s.knownSwarm(f) {
				s.swarms = append(s.swarms, f)
			}
			s.flag(f.Target)
			for _, b := range f.Boosters {
				s.flag(b)
			}
		}
		return
	}
	if s.groupD != nil {
		res := s.groupD.Detect(period)
		for _, g := range res.Groups {
			if !s.knownGroup(g) {
				s.groups = append(s.groups, g)
			}
			for _, m := range g.Members {
				s.flag(m)
			}
		}
		return
	}
	if s.det == nil {
		return
	}
	res := s.detectPairs(period)
	for _, e := range res.Pairs {
		key := [2]int{e.I, e.J}
		if _, ok := s.pairs[key]; !ok {
			s.pairs[key] = e
		}
		s.flag(e.I)
		s.flag(e.J)
	}
}

// detectPairs runs the pairwise detector over the period ledger.
// Both ledger modes take the incremental path: the cumulative ledger is
// the same Ledger value every cycle with its own dirty-set bookkeeping,
// and the windowed path detects over the merged window view — also
// instance-stable — using the dirty set the cycle's Roll reported (delta
// rows merged in plus rows the evicted period's subtraction touched).
// Either way the detector replays memoized per-pair screens for targets
// whose received ratings did not change since the previous cycle; its
// contract guarantees identical pairs, meter charges, and audit events to
// the from-scratch pass, which cfg.FullDetect forces for A/B checks.
func (s *state) detectPairs(period *reputation.Ledger) core.Result {
	inc, ok := s.det.(core.IncrementalDetector)
	if !ok || s.cfg.FullDetect {
		return s.det.Detect(period)
	}
	if s.win != nil {
		return inc.DetectIncremental(period, s.winDirty)
	}
	dirty := period.DirtyTargets()
	res := inc.DetectIncremental(period, dirty)
	period.ClearDirty()
	return res
}

// flag marks a node as detected, zeroes its reputation, and records the
// cycle of first detection.
func (s *state) flag(node int) {
	if !s.flagged[node] {
		s.flagged[node] = true
		s.detCycle[node] = s.cycle
	}
	s.scores[node] = 0
}

// knownSwarm reports whether a swarm with the same target was already
// recorded.
func (s *state) knownSwarm(f core.SybilFinding) bool {
	for _, known := range s.swarms {
		if known.Target == f.Target {
			return true
		}
	}
	return false
}

// knownGroup reports whether an identical member set was already recorded.
func (s *state) knownGroup(g core.Group) bool {
	for _, known := range s.groups {
		if len(known.Members) != len(g.Members) {
			continue
		}
		same := true
		for i := range known.Members {
			if known.Members[i] != g.Members[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

func (s *state) result() *Result {
	res := &Result{
		Scores:              append([]float64(nil), s.scores...),
		Flagged:             append([]bool(nil), s.flagged...),
		RequestsTotal:       s.requestsTotal,
		RequestsToColluders: s.requestsToColluders,
		RatingsRecorded:     s.ratings,
		DetectionCycle:      append([]int(nil), s.detCycle...),
		Ledger:              s.ledger,
	}
	if s.win != nil {
		res.WindowDeltaRows = s.win.DeltaRows()
	}
	for _, e := range s.pairs {
		res.DetectedPairs = append(res.DetectedPairs, e)
	}
	sortEvidence(res.DetectedPairs)
	res.DetectedGroups = append(res.DetectedGroups, s.groups...)
	res.DetectedSwarms = append(res.DetectedSwarms, s.swarms...)
	return res
}

func sortEvidence(es []core.Evidence) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && less(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func less(a, b core.Evidence) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// AveragedResult aggregates several runs with perturbed seeds, as the
// paper averages each experiment over five runs.
type AveragedResult struct {
	// Scores is the per-node mean of final reputations.
	Scores []float64
	// PercentToColluders is the mean share of requests served by colluders.
	PercentToColluders float64
	// FlagRate[i] is the fraction of runs in which node i was flagged.
	FlagRate []float64
	// Runs is the number of runs averaged.
	Runs int
}

// RunAveraged executes runs simulations with distinct seeds and averages
// the per-node scores and request shares.
func RunAveraged(cfg Config, runs int) (*AveragedResult, error) {
	return RunAveragedParallel(cfg, runs, 1)
}

// RunAveragedParallel is RunAveraged with the runs fanned across at most
// workers goroutines. It is bit-identical to the sequential path for every
// worker count: run k seeds its RNG from cfg.Seed and k alone (never from
// goroutine identity), each run accumulates into its own slot of a results
// slice, and the reduction walks the slots in run order, so every float
// addition happens in the same order as the sequential loop. When
// cfg.OnCycle or cfg.OnRating observers are attached the runs execute
// sequentially, since observers are not required to be concurrency-safe;
// cfg.Spans and cfg.Progress force the same, because the span stack and
// the progress reporter's previous-cycle snapshot are per-run state that
// interleaved runs would corrupt. A cfg.Tracer does NOT force sequential
// execution: each run traces into its own forked buffer, and the buffers
// are joined in run order, so the combined trace is byte-identical for
// every worker count.
func RunAveragedParallel(cfg Config, runs, workers int) (*AveragedResult, error) {
	if runs < 1 {
		return nil, fmt.Errorf("simulator: runs = %d, want >= 1", runs)
	}
	if cfg.OnCycle != nil || cfg.OnRating != nil || cfg.Spans.Enabled() || cfg.Progress.Enabled() {
		workers = 1
	}
	kids := cfg.Tracer.Fork(runs)
	results := make([]*Result, runs)
	errs := make([]error, runs)
	parallel.ForEach(workers, runs, func(k int) {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(k)*0x9e3779b97f4a7c15
		runCfg.Tracer = kids[k]
		results[k], errs[k] = Run(runCfg)
	})
	if err := cfg.Tracer.Join(kids); err != nil {
		return nil, fmt.Errorf("simulator: trace sink failed: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	n := cfg.Overlay.Nodes
	avg := &AveragedResult{
		Scores:   make([]float64, n),
		FlagRate: make([]float64, n),
		Runs:     runs,
	}
	for _, res := range results {
		for i, sc := range res.Scores {
			avg.Scores[i] += sc
			if res.Flagged[i] {
				avg.FlagRate[i]++
			}
		}
		avg.PercentToColluders += res.PercentToColluders()
	}
	for i := range avg.Scores {
		avg.Scores[i] /= float64(runs)
		avg.FlagRate[i] /= float64(runs)
	}
	avg.PercentToColluders /= float64(runs)
	return avg, nil
}

package simulator

import (
	"math"
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/stats"
)

// smallConfig shrinks the paper's setup for fast unit tests while keeping
// the structure (pretrusted, paired colluders, interest clusters).
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Overlay.Nodes = 60
	cfg.SimCycles = 8
	cfg.QueryCycles = 10
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Overlay.Nodes = 1 },
		func(c *Config) { c.Pretrusted = []int{-1} },
		func(c *Config) { c.Pretrusted = []int{9999} },
		func(c *Config) { c.Colluders = []int{0} },                 // duplicate with pretrusted
		func(c *Config) { c.Colluders = []int{30, 31, 32} },        // odd count
		func(c *Config) { c.CompromisedPairs = [][2]int{{50, 3}} }, // 50 not pretrusted
		func(c *Config) { c.CompromisedPairs = [][2]int{{0, 50}} }, // 50 not a colluder
		func(c *Config) { c.ColluderGoodProb = 1.5 },
		func(c *Config) { c.NormalGoodProb = -0.1 },
		func(c *Config) { c.ActiveProbRange = [2]float64{0.8, 0.3} },
		func(c *Config) { c.SimCycles = 0 },
		func(c *Config) { c.QueryCycles = 0 },
		func(c *Config) { c.CollusionRatings = -1 },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if EngineEigenTrust.String() != "eigentrust" ||
		EngineSummation.String() != "summation" ||
		EngineWeightedSum.String() != "weighted-sum" {
		t.Fatal("EngineKind strings wrong")
	}
	if DetectorNone.String() != "none" ||
		DetectorBasic.String() != "unoptimized" ||
		DetectorOptimized.String() != "optimized" {
		t.Fatal("DetectorKind strings wrong")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.RequestsTotal != b.RequestsTotal || a.RatingsRecorded != b.RatingsRecorded {
		t.Fatalf("request counts diverged: %d/%d vs %d/%d",
			a.RequestsTotal, a.RatingsRecorded, b.RequestsTotal, b.RatingsRecorded)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("score %d diverged: %v vs %v", i, a.Scores[i], b.Scores[i])
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	cfg := smallConfig()
	a, _ := Run(cfg)
	cfg.Seed = 999
	b, _ := Run(cfg)
	if a.RequestsTotal == b.RequestsTotal && a.RatingsRecorded == b.RatingsRecorded {
		same := true
		for i := range a.Scores {
			if a.Scores[i] != b.Scores[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestRatingsConserved(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < res.Ledger.Size(); i++ {
		total += res.Ledger.TotalFor(i)
	}
	if total != res.RatingsRecorded {
		t.Fatalf("ledger holds %d ratings, recorded %d", total, res.RatingsRecorded)
	}
	if res.RequestsTotal == 0 {
		t.Fatal("no requests served")
	}
}

// groupMeans averages final scores over the three node populations.
func groupMeans(cfg Config, res *Result) (pre, col, norm float64) {
	var sp, sc, sn stats.Summary
	isPre := map[int]bool{}
	for _, p := range cfg.Pretrusted {
		isPre[p] = true
	}
	isCol := map[int]bool{}
	for _, c := range cfg.Colluders {
		isCol[c] = true
	}
	for i, s := range res.Scores {
		switch {
		case isPre[i]:
			sp.Add(s)
		case isCol[i]:
			sc.Add(s)
		default:
			sn.Add(s)
		}
	}
	return sp.Mean(), sc.Mean(), sn.Mean()
}

// Figure 5 shape: with B=0.6 under bare EigenTrust, colluders end with the
// highest reputations — above even the pretrusted nodes.
func TestEigenTrustCollusionWinsAtB06(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pre, col, norm := groupMeans(cfg, res)
	if col <= pre {
		t.Fatalf("colluder mean %v not above pretrusted mean %v", col, pre)
	}
	if pre <= norm {
		t.Fatalf("pretrusted mean %v not above normal mean %v", pre, norm)
	}
}

// Figure 6 shape: with B=0.2, EigenTrust suppresses the colluders and the
// pretrusted nodes dominate.
func TestEigenTrustSuppressesAtB02(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pre, col, _ := groupMeans(cfg, res)
	if col >= pre/10 {
		t.Fatalf("colluder mean %v not well below pretrusted mean %v", col, pre)
	}
}

// Figure 7 shape: compromised pretrusted nodes lift their colluding
// partners above the remaining honest pretrusted node.
func TestCompromisedPretrustBoostsColluders(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.CompromisedPairs = [][2]int{{0, 3}, {1, 5}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The directly boosted colluders (3 and 5) must exceed every normal
	// node and at least one pretrusted node.
	maxNormal := 0.0
	for i, s := range res.Scores {
		if i > 10 && s > maxNormal {
			maxNormal = s
		}
	}
	if res.Scores[3] <= maxNormal || res.Scores[5] <= maxNormal {
		t.Fatalf("boosted colluders (%v, %v) not above normal max %v",
			res.Scores[3], res.Scores[5], maxNormal)
	}
	minPre := math.Inf(1)
	for _, p := range cfg.Pretrusted {
		if res.Scores[p] < minPre {
			minPre = res.Scores[p]
		}
	}
	if res.Scores[3] <= minPre && res.Scores[5] <= minPre {
		t.Fatalf("no boosted colluder (%v, %v) beats the weakest pretrusted %v",
			res.Scores[3], res.Scores[5], minPre)
	}
	// The tail colluders (7..10), starved of requests, stay near zero.
	for i := 7; i <= 10; i++ {
		if res.Scores[i] > res.Scores[3]/10 {
			t.Fatalf("tail colluder %d score %v unexpectedly high", i, res.Scores[i])
		}
	}
}

// Figure 8 shape: the standalone detectors (summation engine, no
// pretrusted nodes) catch all colluders and zero their reputations, and
// the basic and optimized methods produce identical results.
func TestStandaloneDetectorsCatchAll(t *testing.T) {
	base := DefaultConfig()
	base.Pretrusted = nil
	base.Colluders = []int{0, 1, 2, 3, 4, 5, 6, 7}
	base.ColluderGoodProb = 0.2
	base.Engine = EngineSummation

	var results []*Result
	for _, det := range []DetectorKind{DetectorBasic, DetectorOptimized} {
		cfg := base
		cfg.Detector = det
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cfg.Colluders {
			if !res.Flagged[c] {
				t.Fatalf("%v: colluder %d not flagged", det, c)
			}
			if res.Scores[c] != 0 {
				t.Fatalf("%v: colluder %d score %v, want 0", det, c, res.Scores[c])
			}
		}
		// Normal nodes must not be flagged (no false positives).
		for i := 8; i < cfg.Overlay.Nodes; i++ {
			if res.Flagged[i] {
				t.Fatalf("%v: normal node %d falsely flagged", det, i)
			}
		}
		results = append(results, res)
	}
	// "Unoptimized and Optimized generate the same results."
	if len(results[0].DetectedPairs) != len(results[1].DetectedPairs) {
		t.Fatalf("detectors disagree: %d vs %d pairs",
			len(results[0].DetectedPairs), len(results[1].DetectedPairs))
	}
	for i := range results[0].DetectedPairs {
		a, b := results[0].DetectedPairs[i], results[1].DetectedPairs[i]
		if a.I != b.I || a.J != b.J {
			t.Fatalf("pair %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// Figures 9-10 shape: EigenTrust + Optimized zeroes the colluders at both
// B values while pretrusted nodes stay on top.
func TestEigenTrustPlusOptimized(t *testing.T) {
	for _, b := range []float64{0.6, 0.2} {
		cfg := DefaultConfig()
		cfg.ColluderGoodProb = b
		cfg.Detector = DetectorOptimized
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		flagged := 0
		for _, c := range cfg.Colluders {
			if res.Flagged[c] {
				flagged++
			}
			if res.Scores[c] > 1e-3 {
				t.Fatalf("B=%v: colluder %d retains score %v", b, c, res.Scores[c])
			}
		}
		// Collusion detection may miss a starved pair whose outside sample
		// is too small to judge, but must catch the clear majority.
		if flagged < len(cfg.Colluders)-2 {
			t.Fatalf("B=%v: only %d/%d colluders flagged", b, flagged, len(cfg.Colluders))
		}
		pre, _, norm := groupMeans(cfg, res)
		if pre <= norm {
			t.Fatalf("B=%v: pretrusted mean %v not above normal %v", b, pre, norm)
		}
		for _, p := range cfg.Pretrusted {
			if res.Flagged[p] {
				t.Fatalf("B=%v: pretrusted node %d falsely flagged", b, p)
			}
		}
	}
}

// Figure 11 shape: with the detector attached, compromised pretrusted
// nodes and their partners end at zero while the untouched pretrusted node
// keeps a high reputation.
func TestDetectorCatchesCompromisedPretrust(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.CompromisedPairs = [][2]int{{0, 3}, {1, 5}}
	cfg.Detector = DetectorOptimized
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{0, 1, 3, 5} {
		if !res.Flagged[bad] {
			t.Fatalf("compromised participant %d not flagged", bad)
		}
		if res.Scores[bad] != 0 {
			t.Fatalf("compromised participant %d score %v, want 0", bad, res.Scores[bad])
		}
	}
	// Node 2 is the honest pretrusted node; it must stay unflagged with a
	// reputation well above the normal-node average (the paper notes its
	// reputation "is still high" — though, as in Figure 11(a), individual
	// normal nodes can end even higher through rich-get-richer selection).
	if res.Flagged[2] {
		t.Fatal("honest pretrusted node flagged")
	}
	var norm stats.Summary
	for i := 11; i < cfg.Overlay.Nodes; i++ {
		norm.Add(res.Scores[i])
	}
	if res.Scores[2] <= 10*norm.Mean() {
		t.Fatalf("honest pretrusted %v not well above normal mean %v", res.Scores[2], norm.Mean())
	}
}

// Figure 12 shape: the detectors keep the colluders' request share low and
// roughly flat while bare EigenTrust's share grows with the colluder count.
func TestRequestShareShape(t *testing.T) {
	share := func(det DetectorKind, numColluders int) float64 {
		cfg := DefaultConfig()
		cfg.ColluderGoodProb = 0.2
		cfg.Detector = det
		cfg.Colluders = make([]int, numColluders)
		for i := range cfg.Colluders {
			cfg.Colluders[i] = 3 + i
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.PercentToColluders()
	}
	etSmall, etBig := share(DetectorNone, 8), share(DetectorNone, 58)
	optSmall, optBig := share(DetectorOptimized, 8), share(DetectorOptimized, 58)
	if etBig <= etSmall {
		t.Fatalf("EigenTrust share did not grow: %v -> %v", etSmall, etBig)
	}
	if optBig >= etBig/3 {
		t.Fatalf("detector share %v not well below EigenTrust %v", optBig, etBig)
	}
	if optSmall >= etSmall {
		t.Fatalf("detector share %v above EigenTrust %v at 8 colluders", optSmall, etSmall)
	}
}

// Figure 13 shape: measured operation cost orders as
// Unoptimized >> EigenTrust > Optimized on the same scenario.
func TestOperationCostOrdering(t *testing.T) {
	cost := func(engine EngineKind, det DetectorKind) map[string]int64 {
		var meter metrics.CostMeter
		cfg := DefaultConfig()
		cfg.ColluderGoodProb = 0.2
		cfg.Engine = engine
		cfg.Detector = det
		cfg.Meter = &meter
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return meter.Snapshot()
	}
	et := cost(EngineEigenTrust, DetectorNone)
	basic := cost(EngineSummation, DetectorBasic)
	opt := cost(EngineSummation, DetectorOptimized)

	etCost := et[metrics.CostEigenMulAdd]
	basicCost := basic[metrics.CostMatrixScan] + basic[metrics.CostPairCheck]
	optCost := opt[metrics.CostBoundCheck] + opt[metrics.CostPairCheck]
	if etCost == 0 || basicCost == 0 || optCost == 0 {
		t.Fatalf("missing costs: et=%d basic=%d opt=%d", etCost, basicCost, optCost)
	}
	if basicCost <= optCost {
		t.Fatalf("basic cost %d not above optimized %d", basicCost, optCost)
	}
	if etCost <= optCost {
		t.Fatalf("eigentrust cost %d not above optimized %d", etCost, optCost)
	}
}

func TestWeightedSumEngineRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Engine = EngineWeightedSum
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != cfg.Overlay.Nodes {
		t.Fatalf("scores length %d", len(res.Scores))
	}
}

func TestRunAveraged(t *testing.T) {
	cfg := smallConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.Detector = DetectorOptimized
	avg, err := RunAveraged(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Runs != 3 {
		t.Fatalf("Runs = %d", avg.Runs)
	}
	if len(avg.Scores) != cfg.Overlay.Nodes || len(avg.FlagRate) != cfg.Overlay.Nodes {
		t.Fatal("wrong result lengths")
	}
	for i, f := range avg.FlagRate {
		if f < 0 || f > 1 {
			t.Fatalf("FlagRate[%d] = %v", i, f)
		}
	}
	if _, err := RunAveraged(cfg, 0); err == nil {
		t.Fatal("zero runs accepted")
	}
}

func TestPercentToColludersZeroRequests(t *testing.T) {
	var r Result
	if got := r.PercentToColluders(); got != 0 {
		t.Fatalf("PercentToColluders with no requests = %v", got)
	}
}

func BenchmarkRunSmall(b *testing.B) {
	cfg := smallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunPaperScale(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Detector = DetectorOptimized
	cfg.ColluderGoodProb = 0.2
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

package simulator

import (
	"github.com/p2psim/collusion/internal/ingest"
)

// A BatchTap is the traffic-source adapter between the seeded simulator
// and the resident detection service: it captures every rating the
// simulation records and delivers each simulation cycle's ratings as one
// batch, in record order, right after the cycle's own reputation update
// and detection pass. One delivered batch corresponds to exactly one
// service epoch, which is what makes a served run at epoch E
// byte-comparable to the batch run stopped at cycle E.
//
// The tap chains onto any OnRating/OnCycle observers already present on
// the config (they keep firing, after the tap's own work), and — like any
// OnCycle/OnRating observer — forces RunAveragedParallel sequential.
type BatchTap struct {
	buf []ingest.Rating
	fn  func(cycle int, batch []ingest.Rating) error
	err error
}

// NewBatchTap installs a tap on cfg and returns it. fn receives the
// 1-based simulation cycle and the cycle's ratings in record order; the
// batch slice is reused between cycles, so fn must not retain it past its
// return. The first error fn returns stops further deliveries (later
// cycles still simulate; their batches are dropped) and is reported by
// Err.
func NewBatchTap(cfg *Config, fn func(cycle int, batch []ingest.Rating) error) *BatchTap {
	t := &BatchTap{fn: fn}
	prevRating := cfg.OnRating
	cfg.OnRating = func(rater, target, polarity int) {
		t.buf = append(t.buf, ingest.Rating{
			Rater:    int32(rater),
			Target:   int32(target),
			Polarity: int8(polarity),
		})
		if prevRating != nil {
			prevRating(rater, target, polarity)
		}
	}
	prevCycle := cfg.OnCycle
	cfg.OnCycle = func(cycle int, scores []float64) {
		if t.err == nil {
			t.err = t.fn(cycle, t.buf)
		}
		t.buf = t.buf[:0]
		if prevCycle != nil {
			prevCycle(cycle, scores)
		}
	}
	return t
}

// Err returns the first error a delivery returned, if any.
func (t *BatchTap) Err() error { return t.err }

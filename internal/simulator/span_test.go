package simulator

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
)

// spanConfig is the acceptance scenario for the span timeline: a seeded
// windowed run with the optimized detector, so every instrumented phase
// (ingest, window.roll, eigentrust, detect) appears in the timeline.
func spanConfig() Config {
	cfg := smallConfig()
	cfg.Pretrusted = nil
	cfg.Colluders = []int{0, 1, 2, 3, 4, 5, 6, 7}
	cfg.ColluderGoodProb = 0.2
	cfg.Engine = EngineEigenTrust
	cfg.Detector = DetectorOptimized
	cfg.WindowCycles = 3
	return cfg
}

// spanTimeline runs spanConfig with the given worker and ingest-shard
// counts (and a fresh meter, as every CLI invocation has) and returns the
// emitted span timeline bytes.
func spanTimeline(t *testing.T, workers, shards int) []byte {
	t.Helper()
	var sink obs.BufferSink
	var meter metrics.CostMeter
	cfg := spanConfig()
	cfg.Workers = workers
	cfg.IngestShards = shards
	cfg.Meter = &meter
	cfg.Spans = obs.NewSpanTracer(&sink, &meter)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Spans.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes()
}

// TestSpanTimelineByteIdentical pins the tentpole acceptance criterion:
// the span timeline is byte-identical across repeats, worker counts
// {1, 4} and ingest-shard counts {1, 8} on a seeded windowed run —
// span costs come from the meter total, which the parallel- and
// shard-equivalence tests pin invariant.
func TestSpanTimelineByteIdentical(t *testing.T) {
	base := spanTimeline(t, 1, 1)
	if len(base) == 0 {
		t.Fatal("span-traced run produced no events")
	}
	for _, phase := range []string{`"name":"run"`, `"name":"cycle"`, `"name":"ingest"`,
		`"name":"window.roll"`, `"name":"eigentrust"`, `"name":"detect"`} {
		if !bytes.Contains(base, []byte(phase)) {
			t.Errorf("timeline missing %s", phase)
		}
	}
	// The engine span's payload exposes the sparsity the sparse multiply
	// exploited, alongside the iteration count.
	for _, attr := range []string{`"iterations":`, `"nnz":`, `"dangling_rows":`} {
		if !bytes.Contains(base, []byte(attr)) {
			t.Errorf("eigentrust span missing payload attr %s", attr)
		}
	}
	if !bytes.Equal(base, spanTimeline(t, 1, 1)) {
		t.Fatal("repeated seeded runs produced different span timelines")
	}
	for _, tc := range [][2]int{{4, 1}, {1, 8}, {4, 8}} {
		if !bytes.Equal(base, spanTimeline(t, tc[0], tc[1])) {
			t.Fatalf("workers=%d ingest-shards=%d changed the span timeline bytes", tc[0], tc[1])
		}
	}
}

// TestSpanTimelineBalanced folds the timeline and checks bracketing:
// every span_begin has a matching span_end and the run ends at depth
// zero, so downstream folding (traceanalyze spans) never sees a
// truncated tree from a completed run.
func TestSpanTimelineBalanced(t *testing.T) {
	lines := strings.Split(strings.TrimSuffix(string(spanTimeline(t, 1, 1)), "\n"), "\n")
	depth := 0
	begins, ends := 0, 0
	for _, line := range lines {
		switch {
		case strings.Contains(line, `"type":"span_begin"`):
			begins++
			depth++
		case strings.Contains(line, `"type":"span_end"`):
			ends++
			depth--
		default:
			t.Fatalf("unexpected event in span timeline: %s", line)
		}
		if depth < 0 {
			t.Fatalf("span_end without open span at: %s", line)
		}
	}
	if depth != 0 || begins != ends {
		t.Fatalf("unbalanced timeline: %d begins, %d ends, final depth %d", begins, ends, depth)
	}
	// run + per-cycle (cycle, ingest, window.roll, eigentrust, detect).
	want := 1 + spanConfig().SimCycles*5
	if begins != want {
		t.Fatalf("timeline has %d spans, want %d", begins, want)
	}
}

// TestSpanSinkFailureSurfaces pins that a failing span sink becomes a
// run error rather than a silently truncated timeline.
func TestSpanSinkFailureSurfaces(t *testing.T) {
	cfg := spanConfig()
	cfg.Spans = obs.NewSpanTracer(brokenSink{}, nil)
	_, err := Run(cfg)
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("run error %v, want %v", err, errDiskFull)
	}
	if !strings.Contains(fmt.Sprint(err), "span sink") {
		t.Fatalf("error %q does not name the span sink", err)
	}
}

// TestSpansForceSequentialAveraged pins that RunAveragedParallel treats a
// shared (stateful, non-concurrency-safe) span tracer like an OnCycle
// observer: runs execute sequentially and the timeline bytes match for
// every worker count.
func TestSpansForceSequentialAveraged(t *testing.T) {
	averaged := func(workers int) []byte {
		var sink obs.BufferSink
		var meter metrics.CostMeter
		cfg := spanConfig()
		cfg.Meter = &meter
		cfg.Spans = obs.NewSpanTracer(&sink, &meter)
		if _, err := RunAveragedParallel(cfg, 3, workers); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Spans.Close(); err != nil {
			t.Fatal(err)
		}
		return sink.Bytes()
	}
	w1, w4 := averaged(1), averaged(4)
	if len(w1) == 0 {
		t.Fatal("averaged span-traced run produced no events")
	}
	if !bytes.Equal(w1, w4) {
		t.Fatal("worker count changed the averaged span timeline bytes")
	}
}

package simulator

import "testing"

func sybilConfig() Config {
	cfg := DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.Colluders = nil
	// Beneficiary 20 boosted by fakes 21-26.
	cfg.SybilSwarms = [][]int{{20, 21, 22, 23, 24, 25, 26}}
	return cfg
}

func TestSybilConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SybilSwarms = [][]int{{20, 21}} },     // too small
		func(c *Config) { c.SybilSwarms = [][]int{{-1, 21, 22}} }, // out of range
		func(c *Config) { c.SybilSwarms = [][]int{{0, 21, 22}} },  // pretrusted reused
		func(c *Config) { c.SybilSwarms = [][]int{{20, 21, 21}} }, // duplicate member
	}
	for i, mutate := range bad {
		cfg := sybilConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad swarm config %d accepted", i)
		}
	}
}

func TestSybilDetectorCatchesSwarmInSimulation(t *testing.T) {
	cfg := sybilConfig()
	cfg.Detector = DetectorSybil
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range cfg.SybilSwarms[0] {
		if !res.Flagged[m] {
			t.Fatalf("swarm member %d not flagged", m)
		}
		if res.Scores[m] != 0 {
			t.Fatalf("swarm member %d score %v, want 0", m, res.Scores[m])
		}
	}
	if len(res.DetectedSwarms) == 0 {
		t.Fatal("no swarms reported")
	}
	if res.DetectedSwarms[0].Target != 20 {
		t.Fatalf("swarm target = %d, want 20", res.DetectedSwarms[0].Target)
	}
	for _, p := range cfg.Pretrusted {
		if res.Flagged[p] {
			t.Fatalf("pretrusted %d falsely flagged", p)
		}
	}
}

func TestPairwiseAndGroupMissSwarmInSimulation(t *testing.T) {
	for _, det := range []DetectorKind{DetectorOptimized, DetectorGroup} {
		cfg := sybilConfig()
		cfg.Detector = det
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Flagged[20] {
			t.Fatalf("%v unexpectedly flagged the swarm beneficiary", det)
		}
	}
}

func TestSwarmBoostsBeneficiaryWithoutDetection(t *testing.T) {
	cfg := sybilConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	normalMean := 0.0
	count := 0
	for i := 30; i < cfg.Overlay.Nodes; i++ {
		normalMean += res.Scores[i]
		count++
	}
	normalMean /= float64(count)
	if res.Scores[20] <= 5*normalMean {
		t.Fatalf("beneficiary %v not boosted above normal mean %v",
			res.Scores[20], normalMean)
	}
}

package simulator

import "testing"

func TestWindowConfigValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.WindowCycles = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative WindowCycles accepted")
	}
	cfg = smallConfig()
	cfg.CollusionStartCycle = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative CollusionStartCycle accepted")
	}
	cfg = smallConfig()
	cfg.CollusionStartCycle = cfg.SimCycles + 5
	if _, err := Run(cfg); err == nil {
		t.Error("CollusionStartCycle beyond run accepted")
	}
}

func TestWindowedDetectionStillCatchesColluders(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.Detector = DetectorOptimized
	cfg.WindowCycles = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flagged := 0
	for _, c := range cfg.Colluders {
		if res.Flagged[c] {
			flagged++
		}
	}
	if flagged < len(cfg.Colluders)-2 {
		t.Fatalf("windowed detection flagged only %d/%d colluders", flagged, len(cfg.Colluders))
	}
}

func TestLateOnsetDelaysDetection(t *testing.T) {
	base := DefaultConfig()
	base.ColluderGoodProb = 0.2
	base.Detector = DetectorOptimized

	early, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	late := base
	late.CollusionStartCycle = 10
	lateRes, err := Run(late)
	if err != nil {
		t.Fatal(err)
	}

	meanCycle := func(res *Result) float64 {
		sum, n := 0, 0
		for _, c := range base.Colluders {
			if res.Flagged[c] {
				sum += res.DetectionCycle[c]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return float64(sum) / float64(n)
	}
	earlyMean, lateMean := meanCycle(early), meanCycle(lateRes)
	if earlyMean == 0 || lateMean == 0 {
		t.Fatalf("colluders undetected: early=%v late=%v", earlyMean, lateMean)
	}
	if lateMean < 10 {
		t.Fatalf("late-onset colluders detected at cycle %v, before they started", lateMean)
	}
	if lateMean <= earlyMean {
		t.Fatalf("late onset (%v) not later than early onset (%v)", lateMean, earlyMean)
	}
	// Detection must follow onset promptly (within a few cycles).
	if lateMean > 13 {
		t.Fatalf("detection lagged onset by %v cycles", lateMean-10)
	}
}

func TestOnsetSuppressesEarlyFlood(t *testing.T) {
	cfg := smallConfig()
	cfg.CollusionStartCycle = cfg.SimCycles // only the final cycle colludes
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The pair flood contributes CollusionRatings x QueryCycles ratings per
	// direction in exactly one cycle; a handful of organic ratings may add
	// to the pair count because colluders also serve each other's requests.
	want := cfg.CollusionRatings * cfg.QueryCycles
	got := res.Ledger.PairTotal(cfg.Colluders[0], cfg.Colluders[1])
	if got < want || got > want+20 {
		t.Fatalf("flood volume = %d, want about %d (one cycle only)", got, want)
	}
}

// A tight two-cycle window still catches continuous collusion: every
// window contains at least one full cycle of flooding, far above T_N.
// (The forgetting semantics of the window itself — evicted periods no
// longer counting — is covered by the reputation.WindowedLedger tests.)
func TestTightWindowStillDetects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.SimCycles = 8
	cfg.Detector = DetectorOptimized
	cfg.WindowCycles = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged[3] {
		t.Fatal("continuous collusion not caught under a tight window")
	}
}

// Package stats provides the small descriptive-statistics toolkit used by
// the trace analyses and experiment harnesses: running summaries, fixed-bin
// histograms, and per-day time bucketing.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming descriptive statistics using Welford's
// algorithm, so it is numerically stable for long runs. The zero value is
// an empty summary ready for Add.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll folds every observation into the summary.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// String renders the summary compactly for experiment logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 for empty input). The input is not
// modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs using linear interpolation between
// order statistics. q is clamped to [0, 1]; empty input yields 0. The input
// is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width binning of values over [Lo, Hi). Values
// outside the range are clamped into the first or last bin so totals are
// preserved, which the figure harnesses rely on.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram creates a histogram of bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// DailyCounts buckets event days into a per-day count series of the given
// length. Days outside [0, days) are ignored.
func DailyCounts(eventDays []int, days int) []int {
	counts := make([]int, days)
	for _, d := range eventDays {
		if d >= 0 && d < days {
			counts[d]++
		}
	}
	return counts
}

// RatePerDay summarizes a per-day count series: the mean over all days and
// the maximum and minimum daily counts across the window. The paper's
// Figure 1(c) reports exactly these three values per rater.
func RatePerDay(counts []int) (mean, max, min float64) {
	if len(counts) == 0 {
		return 0, 0, 0
	}
	total := 0
	maxC, minC := counts[0], counts[0]
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
		if c < minC {
			minC = c
		}
	}
	return float64(total) / float64(len(counts)), float64(maxC), float64(minC)
}

// Gini returns the Gini coefficient of the non-negative values in xs —
// 0 for perfectly equal values, approaching 1 when a few values hold all
// the mass. The reputation-distribution figures use it to quantify how
// skewed the system's trust is (the paper's Figure 5(a) notes the skew
// toward pretrusted nodes and colluders). Negative values are treated as
// zero; empty or all-zero input yields 0.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			sorted[i] = x
		}
	}
	sort.Float64s(sorted)
	total := 0.0
	weighted := 0.0
	for i, x := range sorted {
		total += x
		weighted += float64(i+1) * x
	}
	if total == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*weighted - (n+1)*total) / (n * total)
}

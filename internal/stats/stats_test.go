package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero-value summary not empty")
	}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Unbiased sample variance of the classic dataset is 32/7.
	if !almost(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatal("variance of one observation should be 0")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("min/max wrong for single observation")
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.AddAll([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}

// Property: Welford mean/variance match the naive two-pass computation.
func TestQuickSummaryMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		var s Summary
		s.AddAll(xs)

		mean := Mean(xs)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		naiveVar := varSum / float64(len(xs)-1)
		return almost(s.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almost(s.Variance(), naiveVar, 1e-6*(1+naiveVar))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almost(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {1, 50}, {-0.5, 10}, {2, 50},
		{0.5, 30}, {0.25, 20}, {0.75, 40}, {0.1, 14},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []int8, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(qa) / 255
		b := float64(qb) / 255
		if a > b {
			a, b = b, a
		}
		va, vb := Quantile(xs, a), Quantile(xs, b)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return va <= vb+1e-9 && va >= sorted[0]-1e-9 && vb <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99} {
		h.Add(x)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(-100)
	h.Add(100)
	h.Add(10) // exactly Hi clamps into the last bin
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Fatalf("Counts = %v, want [1 2]", h.Counts)
	}
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3 (clamping must preserve totals)", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); !almost(got, 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); !almost(got, 9, 1e-12) {
		t.Fatalf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestDailyCounts(t *testing.T) {
	counts := DailyCounts([]int{0, 0, 2, 5, -1, 9}, 5)
	want := []int{2, 0, 1, 0, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("DailyCounts = %v, want %v", counts, want)
		}
	}
}

func TestRatePerDay(t *testing.T) {
	mean, max, min := RatePerDay([]int{0, 2, 4, 2})
	if !almost(mean, 2, 1e-12) || max != 4 || min != 0 {
		t.Fatalf("RatePerDay = %v/%v/%v, want 2/4/0", mean, max, min)
	}
	mean, max, min = RatePerDay(nil)
	if mean != 0 || max != 0 || min != 0 {
		t.Fatal("RatePerDay(nil) should be all zeros")
	}
}

// Property: daily bucketing conserves in-window events.
func TestQuickDailyCountsConserve(t *testing.T) {
	f := func(days []uint8) bool {
		const window = 64
		in := make([]int, len(days))
		inWindow := 0
		for i, d := range days {
			in[i] = int(d)
			if int(d) < window {
				inWindow++
			}
		}
		counts := DailyCounts(in, window)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == inWindow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}

func BenchmarkQuantile(b *testing.B) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64((i * 7919) % 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantile(xs, 0.95)
	}
}

func TestGini(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0, 0}, 0},
		{[]float64{5, 5, 5, 5}, 0},      // perfect equality
		{[]float64{0, 0, 0, 10}, 0.75},  // one holder of all mass
		{[]float64{-3, 0, 0, 10}, 0.75}, // negatives clamp to zero
		{[]float64{1, 2, 3, 4}, 0.25},   // classic example
	}
	for _, c := range cases {
		if got := Gini(c.in); !almost(got, c.want, 1e-9) {
			t.Errorf("Gini(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: Gini is scale-invariant and bounded in [0, 1).
func TestQuickGiniBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			scaled[i] = float64(v) * 7.5
		}
		g := Gini(xs)
		if g < 0 || g >= 1 {
			return false
		}
		return almost(g, Gini(scaled), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

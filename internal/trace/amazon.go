package trace

import (
	"fmt"

	"github.com/p2psim/collusion/internal/rng"
)

// SellerBand describes a group of sellers sharing a target reputation level
// and an organic transaction volume, mirroring the reputation bands in
// Figure 1(a) of the paper (high-reputed sellers attract more transactions).
type SellerBand struct {
	// Reputation is the band's target reputation in [0, 1] under the Amazon
	// formula (positives / all ratings).
	Reputation float64
	// Count is how many sellers belong to the band.
	Count int
	// MeanDailyRatings is the expected number of organic ratings a band
	// seller receives per day.
	MeanDailyRatings float64
}

// AmazonConfig parameterizes the synthetic Amazon-style trace generator.
// Sellers receive ratings from buyers; buyers are never rated back, matching
// the asymmetry the paper notes for Amazon.
type AmazonConfig struct {
	// Seed makes generation reproducible.
	Seed uint64
	// Days is the observation window length (the paper's window is ~1 year).
	Days int
	// Bands describes the seller population.
	Bands []SellerBand
	// SuspiciousSellers is how many sellers (taken from the highest-volume
	// mid-band sellers first) receive planted booster raters.
	SuspiciousSellers int
	// BoostersPerSeller is the number of planted always-5 raters per
	// suspicious seller (the paper found pairs; 2 is typical).
	BoostersPerSeller int
	// BoosterRatingsPerYear bounds the planted booster frequency
	// (paper: suspicious ≥ 20/year, max observed 55/year).
	BoosterRatingsPerYear [2]int
	// RivalsPerSeller is the number of planted always-1 raters per
	// suspicious seller (the paper observed one such rival).
	RivalsPerSeller int
	// RivalRatingsPerYear bounds the planted rival frequency.
	RivalRatingsPerYear [2]int
	// NormalRepeatMax caps how many times a normal buyer rates the same
	// seller in the window (paper: average 1/year, max ~15/year).
	NormalRepeatMax int
	// RepeatBuyerProb is the chance an organic rating comes from a buyer who
	// already rated the seller, rather than a fresh buyer.
	RepeatBuyerProb float64
}

// DefaultAmazonConfig mirrors the paper's population at a laptop-friendly
// scale: 97 sellers in reputation bands [0.67, 0.98], a one-year window,
// 18 suspicious sellers with booster pairs, and frequency thresholds
// matching Section III (20/year suspicion cutoff, 55/year max).
func DefaultAmazonConfig() AmazonConfig {
	return AmazonConfig{
		Seed: 1,
		Days: DaysPerYear,
		Bands: []SellerBand{
			{Reputation: 0.98, Count: 12, MeanDailyRatings: 8},
			{Reputation: 0.96, Count: 15, MeanDailyRatings: 6.5},
			{Reputation: 0.95, Count: 15, MeanDailyRatings: 6},
			{Reputation: 0.94, Count: 10, MeanDailyRatings: 5.5},
			{Reputation: 0.91, Count: 12, MeanDailyRatings: 3.5},
			{Reputation: 0.90, Count: 10, MeanDailyRatings: 3},
			{Reputation: 0.88, Count: 11, MeanDailyRatings: 2.5},
			{Reputation: 0.79, Count: 5, MeanDailyRatings: 1},
			{Reputation: 0.67, Count: 7, MeanDailyRatings: 0.6},
		},
		SuspiciousSellers:     18,
		BoostersPerSeller:     2,
		BoosterRatingsPerYear: [2]int{22, 55},
		RivalsPerSeller:       1,
		RivalRatingsPerYear:   [2]int{20, 30},
		NormalRepeatMax:       15,
		RepeatBuyerProb:       0.05,
	}
}

// Validate reports the first configuration problem, if any.
func (c AmazonConfig) Validate() error {
	if c.Days <= 0 {
		return fmt.Errorf("trace: AmazonConfig.Days = %d, want > 0", c.Days)
	}
	if len(c.Bands) == 0 {
		return fmt.Errorf("trace: AmazonConfig has no seller bands")
	}
	total := 0
	for i, b := range c.Bands {
		if b.Reputation < 0 || b.Reputation > 1 {
			return fmt.Errorf("trace: band %d reputation %v outside [0,1]", i, b.Reputation)
		}
		if b.Count <= 0 {
			return fmt.Errorf("trace: band %d count %d, want > 0", i, b.Count)
		}
		if b.MeanDailyRatings < 0 {
			return fmt.Errorf("trace: band %d mean daily ratings %v, want >= 0", i, b.MeanDailyRatings)
		}
		total += b.Count
	}
	if c.SuspiciousSellers > total {
		return fmt.Errorf("trace: %d suspicious sellers exceed %d total sellers", c.SuspiciousSellers, total)
	}
	if c.BoosterRatingsPerYear[0] > c.BoosterRatingsPerYear[1] {
		return fmt.Errorf("trace: booster frequency range inverted")
	}
	if c.RivalRatingsPerYear[0] > c.RivalRatingsPerYear[1] {
		return fmt.Errorf("trace: rival frequency range inverted")
	}
	if c.NormalRepeatMax < 1 {
		return fmt.Errorf("trace: NormalRepeatMax = %d, want >= 1", c.NormalRepeatMax)
	}
	if c.RepeatBuyerProb < 0 || c.RepeatBuyerProb > 1 {
		return fmt.Errorf("trace: RepeatBuyerProb = %v outside [0,1]", c.RepeatBuyerProb)
	}
	return nil
}

// SellerInfo reports the generator's intent for one seller, used by the
// Figure 1 harnesses to label series without consulting detection output.
type SellerInfo struct {
	ID         NodeID
	Band       float64 // the band's target reputation
	Suspicious bool
}

// AmazonTrace is a generated Amazon-style trace plus seller metadata.
type AmazonTrace struct {
	Trace
	Sellers []SellerInfo
}

// GenerateAmazon builds a synthetic Amazon-style rating trace.
// Seller IDs occupy [0, #sellers); buyer IDs follow.
func GenerateAmazon(cfg AmazonConfig) (*AmazonTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed).Child("amazon")

	var sellers []SellerInfo
	for _, band := range cfg.Bands {
		for i := 0; i < band.Count; i++ {
			sellers = append(sellers, SellerInfo{ID: NodeID(len(sellers)), Band: band.Reputation})
		}
	}
	nextBuyer := NodeID(len(sellers))

	out := &AmazonTrace{}
	out.Truth.Boosters = make(map[NodeID][]NodeID)
	out.Truth.Rivals = make(map[NodeID][]NodeID)

	// Mark suspicious sellers: the paper's suspects sit in the [0.94, 0.97]
	// reputation range, so pick from bands inside it first.
	suspicious := pickSuspicious(sellers, cfg.SuspiciousSellers)
	for _, idx := range suspicious {
		sellers[idx].Suspicious = true
	}

	// Organic traffic per seller.
	bandOf := expandBands(cfg.Bands)
	for si := range sellers {
		band := bandOf[si]
		nRatings := r.Poisson(band.MeanDailyRatings * float64(cfg.Days))
		buyers := newBuyerPool(cfg.NormalRepeatMax)
		for k := 0; k < nRatings; k++ {
			buyer := buyers.pick(r, cfg.RepeatBuyerProb, &nextBuyer)
			out.Ratings = append(out.Ratings, Rating{
				Day:    r.Intn(cfg.Days),
				Rater:  buyer,
				Target: sellers[si].ID,
				Score:  organicScore(r, band.Reputation),
			})
		}
	}

	// Planted boosters and rivals on suspicious sellers.
	for _, si := range suspicious {
		seller := sellers[si].ID
		for b := 0; b < cfg.BoostersPerSeller; b++ {
			booster := nextBuyer
			nextBuyer++
			out.Truth.Boosters[seller] = append(out.Truth.Boosters[seller], booster)
			n := scaleFrequency(r, cfg.BoosterRatingsPerYear, cfg.Days)
			for k := 0; k < n; k++ {
				out.Ratings = append(out.Ratings, Rating{
					Day: r.Intn(cfg.Days), Rater: booster, Target: seller, Score: 5,
				})
			}
		}
		for v := 0; v < cfg.RivalsPerSeller; v++ {
			rival := nextBuyer
			nextBuyer++
			out.Truth.Rivals[seller] = append(out.Truth.Rivals[seller], rival)
			n := scaleFrequency(r, cfg.RivalRatingsPerYear, cfg.Days)
			for k := 0; k < n; k++ {
				out.Ratings = append(out.Ratings, Rating{
					Day: r.Intn(cfg.Days), Rater: rival, Target: seller, Score: 1,
				})
			}
		}
	}

	out.Sellers = sellers
	out.SortByDay()
	return out, nil
}

// pickSuspicious returns indices of sellers to mark suspicious, preferring
// bands within [0.94, 0.97] and falling back to the highest bands below it.
func pickSuspicious(sellers []SellerInfo, n int) []int {
	var preferred, fallback []int
	for i, s := range sellers {
		if s.Band >= 0.94 && s.Band <= 0.97 {
			preferred = append(preferred, i)
		} else {
			fallback = append(fallback, i)
		}
	}
	picked := preferred
	if len(picked) > n {
		picked = picked[:n]
	} else {
		need := n - len(picked)
		if need > len(fallback) {
			need = len(fallback)
		}
		picked = append(picked, fallback[:need]...)
	}
	return picked
}

// expandBands flattens band descriptors to one entry per seller, matching
// the seller construction order in GenerateAmazon.
func expandBands(bands []SellerBand) []SellerBand {
	var out []SellerBand
	for _, b := range bands {
		for i := 0; i < b.Count; i++ {
			out = append(out, b)
		}
	}
	return out
}

// organicScore draws a raw score whose polarity is positive with the band's
// target probability; the small neutral share mirrors real feedback noise.
func organicScore(r *rng.Rand, reputation float64) Score {
	u := r.Float64()
	switch {
	case u < reputation:
		if r.Bool(0.7) {
			return 5
		}
		return 4
	case u < reputation+(1-reputation)*0.1:
		return 3
	default:
		if r.Bool(0.6) {
			return 1
		}
		return 2
	}
}

// scaleFrequency draws a per-year count in [lo, hi] and scales it to the
// configured window length, keeping at least one event.
func scaleFrequency(r *rng.Rand, perYear [2]int, days int) int {
	n := r.IntRange(perYear[0], perYear[1])
	scaled := n * days / DaysPerYear
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// buyerPool tracks buyers who already rated a seller so organic repeats stay
// under the configured per-pair cap.
type buyerPool struct {
	repeatMax int
	buyers    []NodeID
	counts    map[NodeID]int
}

func newBuyerPool(repeatMax int) *buyerPool {
	return &buyerPool{repeatMax: repeatMax, counts: make(map[NodeID]int)}
}

func (p *buyerPool) pick(r *rng.Rand, repeatProb float64, next *NodeID) NodeID {
	if len(p.buyers) > 0 && r.Bool(repeatProb) {
		// Try a few times to find a repeat buyer under the cap.
		for attempt := 0; attempt < 4; attempt++ {
			b := p.buyers[r.Intn(len(p.buyers))]
			if p.counts[b] < p.repeatMax {
				p.counts[b]++
				return b
			}
		}
	}
	b := *next
	*next++
	p.buyers = append(p.buyers, b)
	p.counts[b] = 1
	return b
}

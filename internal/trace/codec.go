package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout used by WriteCSV and expected by ReadCSV.
var csvHeader = []string{"day", "rater", "target", "score"}

// WriteCSV encodes the trace's ratings as CSV with a header row. Ground
// truth is intentionally not serialized: an ingested trace, like a real
// crawl, carries no labels.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, 4)
	for _, r := range t.Ratings {
		row[0] = strconv.Itoa(r.Day)
		row[1] = strconv.Itoa(int(r.Rater))
		row[2] = strconv.Itoa(int(r.Target))
		row[3] = strconv.Itoa(int(r.Score))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace previously written by WriteCSV (or produced by
// any tool emitting the same day,rater,target,score layout).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: unexpected header column %d: got %q, want %q", i, header[i], want)
		}
	}
	t := &Trace{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read line %d: %w", line, err)
		}
		rating, err := parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Ratings = append(t.Ratings, rating)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseRow(rec []string) (Rating, error) {
	day, err := strconv.Atoi(rec[0])
	if err != nil {
		return Rating{}, fmt.Errorf("bad day %q: %w", rec[0], err)
	}
	rater, err := strconv.Atoi(rec[1])
	if err != nil {
		return Rating{}, fmt.Errorf("bad rater %q: %w", rec[1], err)
	}
	target, err := strconv.Atoi(rec[2])
	if err != nil {
		return Rating{}, fmt.Errorf("bad target %q: %w", rec[2], err)
	}
	score, err := strconv.Atoi(rec[3])
	if err != nil {
		return Rating{}, fmt.Errorf("bad score %q: %w", rec[3], err)
	}
	return Rating{Day: day, Rater: NodeID(rater), Target: NodeID(target), Score: Score(score)}, nil
}

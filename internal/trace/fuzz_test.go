package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV drives the trace parser with arbitrary input: it must never
// panic, and anything it accepts must be a structurally valid trace that
// survives a round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("day,rater,target,score\n1,2,3,4\n")
	f.Add("day,rater,target,score\n0,100,1,5\n364,101,2,1\n")
	f.Add("day,rater,target,score\n")
	f.Add("wrong,header,entirely,here\n1,2,3,4\n")
	f.Add("day,rater,target,score\n-1,2,3,4\n")
	f.Add("day,rater,target,score\n1,2,2,4\n")      // self rating
	f.Add("day,rater,target,score\n1,2,3,9\n")      // bad score
	f.Add("day,rater,target,score\nx,y,z,w\n")      // non-numeric
	f.Add("day,rater,target,score\n1,2,3\n")        // short row
	f.Add("day,rater,target,score\n1,2,3,4,5\n")    // long row
	f.Add("day,rater,target,score\n1,2,3,4\n\x00卡") // binary garbage

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		checkRoundTrips(t, tr)
	})
}

// FuzzReadJSONL drives the JSON-Lines parser with arbitrary input under
// the same contract as FuzzReadCSV: never panic, and every accepted trace
// survives re-encoding through both codecs.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"day":1,"rater":2,"target":3,"score":4}` + "\n")
	f.Add(`{"day":0,"rater":100,"target":1,"score":5}` + "\n" + `{"day":364,"rater":101,"target":2,"score":1}` + "\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Add(`{"day":-1,"rater":2,"target":3,"score":4}`)        // bad day
	f.Add(`{"day":1,"rater":2,"target":2,"score":4}`)         // self rating
	f.Add(`{"day":1,"rater":2,"target":3,"score":9}`)         // bad score
	f.Add(`{"day":1,"rater":2,"target":3}`)                   // missing field
	f.Add(`{"day":1,"rater":2,"target":3,"score":4,"x":"y"}`) // extra field
	f.Add("not json at all")
	f.Add("{\"day\":1,\"rater\":2,\"target\":3,\"score\":4}\n\x00卡") // binary garbage

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		checkRoundTrips(t, tr)
	})
}

// checkRoundTrips asserts an accepted trace is structurally valid and
// survives CSV and JSONL re-encoding bit-identically.
func checkRoundTrips(t *testing.T, tr *Trace) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("accepted trace fails validation: %v", err)
	}
	type codec struct {
		name  string
		write func(*bytes.Buffer, *Trace) error
		read  func(*bytes.Buffer) (*Trace, error)
	}
	codecs := []codec{
		{
			name:  "csv",
			write: func(b *bytes.Buffer, tr *Trace) error { return WriteCSV(b, tr) },
			read:  func(b *bytes.Buffer) (*Trace, error) { return ReadCSV(b) },
		},
		{
			name:  "jsonl",
			write: func(b *bytes.Buffer, tr *Trace) error { return WriteJSONL(b, tr) },
			read:  func(b *bytes.Buffer) (*Trace, error) { return ReadJSONL(b) },
		},
	}
	for _, c := range codecs {
		var buf bytes.Buffer
		if err := c.write(&buf, tr); err != nil {
			t.Fatalf("%s: accepted trace cannot be re-encoded: %v", c.name, err)
		}
		again, err := c.read(&buf)
		if err != nil {
			t.Fatalf("%s: re-encoded trace rejected: %v", c.name, err)
		}
		if len(again.Ratings) != len(tr.Ratings) {
			t.Fatalf("%s: round trip changed size: %d != %d", c.name, len(again.Ratings), len(tr.Ratings))
		}
		for i := range again.Ratings {
			if again.Ratings[i] != tr.Ratings[i] {
				t.Fatalf("%s: round trip changed rating %d", c.name, i)
			}
		}
	}
}

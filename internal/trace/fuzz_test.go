package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV drives the trace parser with arbitrary input: it must never
// panic, and anything it accepts must be a structurally valid trace that
// survives a round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("day,rater,target,score\n1,2,3,4\n")
	f.Add("day,rater,target,score\n0,100,1,5\n364,101,2,1\n")
	f.Add("day,rater,target,score\n")
	f.Add("wrong,header,entirely,here\n1,2,3,4\n")
	f.Add("day,rater,target,score\n-1,2,3,4\n")
	f.Add("day,rater,target,score\n1,2,2,4\n")      // self rating
	f.Add("day,rater,target,score\n1,2,3,9\n")      // bad score
	f.Add("day,rater,target,score\nx,y,z,w\n")      // non-numeric
	f.Add("day,rater,target,score\n1,2,3\n")        // short row
	f.Add("day,rater,target,score\n1,2,3,4,5\n")    // long row
	f.Add("day,rater,target,score\n1,2,3,4\n\x00卡") // binary garbage

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("accepted trace cannot be re-encoded: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if len(again.Ratings) != len(tr.Ratings) {
			t.Fatalf("round trip changed size: %d != %d", len(again.Ratings), len(tr.Ratings))
		}
		for i := range again.Ratings {
			if again.Ratings[i] != tr.Ratings[i] {
				t.Fatalf("round trip changed rating %d", i)
			}
		}
	})
}

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlRating is the wire form of one rating in JSON-Lines traces.
type jsonlRating struct {
	Day    int `json:"day"`
	Rater  int `json:"rater"`
	Target int `json:"target"`
	Score  int `json:"score"`
}

// WriteJSONL encodes the trace's ratings as JSON Lines (one rating object
// per line), a common interchange format for streaming trace processing.
// As with CSV, ground truth is not serialized.
func WriteJSONL(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range t.Ratings {
		if err := enc.Encode(jsonlRating{
			Day:    r.Day,
			Rater:  int(r.Rater),
			Target: int(r.Target),
			Score:  int(r.Score),
		}); err != nil {
			return fmt.Errorf("trace: encode rating %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSON-Lines trace written by WriteJSONL. Blank lines
// are skipped; the decoded trace is validated structurally.
func ReadJSONL(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jr jsonlRating
		if err := json.Unmarshal(raw, &jr); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Ratings = append(t.Ratings, Rating{
			Day:    jr.Day,
			Rater:  NodeID(jr.Rater),
			Target: NodeID(jr.Target),
			Score:  Score(jr.Score),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONLRoundTrip(t *testing.T) {
	orig := &Trace{Ratings: []Rating{
		{Day: 0, Rater: 100, Target: 1, Score: 5},
		{Day: 42, Rater: 101, Target: 2, Score: 1},
		{Day: 364, Rater: 102, Target: 1, Score: 3},
	}}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ratings) != len(orig.Ratings) {
		t.Fatalf("round trip lost ratings: %d != %d", len(got.Ratings), len(orig.Ratings))
	}
	for i := range got.Ratings {
		if got.Ratings[i] != orig.Ratings[i] {
			t.Fatalf("rating %d mismatch", i)
		}
	}
}

func TestJSONLSkipsBlankLines(t *testing.T) {
	in := "{\"day\":1,\"rater\":2,\"target\":3,\"score\":4}\n\n{\"day\":2,\"rater\":5,\"target\":6,\"score\":5}\n"
	tr, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ratings) != 2 {
		t.Fatalf("got %d ratings, want 2", len(tr.Ratings))
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json\n",
		"{\"day\":1,\"rater\":2,\"target\":2,\"score\":4}\n", // self rating
		"{\"day\":1,\"rater\":2,\"target\":3,\"score\":9}\n", // bad score
		"{\"day\":-1,\"rater\":2,\"target\":3,\"score\":4}\n",
	}
	for _, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

// Property: CSV and JSONL codecs agree on every valid trace.
func TestQuickCodecsAgree(t *testing.T) {
	f := func(days []uint8, parts []uint16) bool {
		n := len(days)
		if len(parts) < n {
			n = len(parts)
		}
		tr := &Trace{}
		for i := 0; i < n; i++ {
			rater := NodeID(parts[i] & 0xFF)
			target := NodeID(parts[i] >> 8)
			if rater == target {
				target++
			}
			tr.Ratings = append(tr.Ratings, Rating{
				Day:    int(days[i]),
				Rater:  rater,
				Target: target,
				Score:  Score(int(parts[i])%5 + 1),
			})
		}
		var csvBuf, jsonBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, tr); err != nil {
			return false
		}
		if err := WriteJSONL(&jsonBuf, tr); err != nil {
			return false
		}
		fromCSV, err := ReadCSV(&csvBuf)
		if err != nil {
			return false
		}
		fromJSON, err := ReadJSONL(&jsonBuf)
		if err != nil {
			return false
		}
		if len(fromCSV.Ratings) != len(fromJSON.Ratings) {
			return false
		}
		for i := range fromCSV.Ratings {
			if fromCSV.Ratings[i] != fromJSON.Ratings[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteJSONL(b *testing.B) {
	at, err := GenerateAmazon(smallAmazonConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, &at.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

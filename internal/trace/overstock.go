package trace

import (
	"fmt"

	"github.com/p2psim/collusion/internal/rng"
)

// OverstockConfig parameterizes the synthetic Overstock-Auctions-style trace
// generator. Unlike Amazon, every user can act as both buyer and seller, so
// mutual rating relationships exist and group structure can be studied
// (Figure 1(d) and characteristic C5).
type OverstockConfig struct {
	// Seed makes generation reproducible.
	Seed uint64
	// Days is the observation window length.
	Days int
	// Users is the population size (the paper crawled ~100k and sampled 500
	// for the figure; the default is laptop-scale with the same structure).
	Users int
	// OrganicTransactions is the number of ordinary one-off transactions;
	// each produces a buyer→seller rating and, with MutualRatingProb, a
	// seller→buyer rating back.
	OrganicTransactions int
	// MutualRatingProb is the chance a transaction is rated in both
	// directions.
	MutualRatingProb float64
	// ColludingPairs is the number of planted mutually boosting pairs.
	ColludingPairs int
	// ColluderRatingsPerYear bounds the planted per-direction frequency
	// (paper: edges drawn when a pair exceeds 20 ratings).
	ColluderRatingsPerYear [2]int
	// ChainUsers plants users that collude with two different partners in
	// separate pairs, reproducing the connected-but-pairwise triples the
	// paper observed (a node may have multiple colluders, but only in
	// pairs — never a closed group of three).
	ChainUsers int
	// PositiveProb is the chance an organic rating is positive.
	PositiveProb float64
}

// DefaultOverstockConfig mirrors the paper's Overstock analysis at reduced
// scale: 2,000 users, ~9,000 organic transactions, 12 colluding pairs and
// 3 chain users, over one year.
func DefaultOverstockConfig() OverstockConfig {
	return OverstockConfig{
		Seed:                   1,
		Days:                   DaysPerYear,
		Users:                  2000,
		OrganicTransactions:    9000,
		MutualRatingProb:       0.5,
		ColludingPairs:         12,
		ColluderRatingsPerYear: [2]int{25, 55},
		ChainUsers:             3,
		PositiveProb:           0.92,
	}
}

// Validate reports the first configuration problem, if any.
func (c OverstockConfig) Validate() error {
	if c.Days <= 0 {
		return fmt.Errorf("trace: OverstockConfig.Days = %d, want > 0", c.Days)
	}
	if c.Users < 2 {
		return fmt.Errorf("trace: OverstockConfig.Users = %d, want >= 2", c.Users)
	}
	if c.OrganicTransactions < 0 {
		return fmt.Errorf("trace: negative organic transactions")
	}
	if c.MutualRatingProb < 0 || c.MutualRatingProb > 1 {
		return fmt.Errorf("trace: MutualRatingProb = %v outside [0,1]", c.MutualRatingProb)
	}
	if c.PositiveProb < 0 || c.PositiveProb > 1 {
		return fmt.Errorf("trace: PositiveProb = %v outside [0,1]", c.PositiveProb)
	}
	needed := 2*c.ColludingPairs + 3*c.ChainUsers
	if needed > c.Users {
		return fmt.Errorf("trace: %d users needed for planted structures, only %d available", needed, c.Users)
	}
	if c.ColluderRatingsPerYear[0] > c.ColluderRatingsPerYear[1] {
		return fmt.Errorf("trace: colluder frequency range inverted")
	}
	if c.ColluderRatingsPerYear[0] < 1 {
		return fmt.Errorf("trace: colluder frequency must be >= 1")
	}
	return nil
}

// GenerateOverstock builds a synthetic Overstock-style mutual-rating trace.
// User IDs occupy [0, Users).
func GenerateOverstock(cfg OverstockConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed).Child("overstock")

	t := &Trace{}
	t.Truth.Boosters = make(map[NodeID][]NodeID)
	t.Truth.Rivals = make(map[NodeID][]NodeID)

	// Reserve users for planted structures from the front of the ID space
	// (deterministic and easy to reason about in tests); organic traffic is
	// drawn over the whole population, so planted users also look normal.
	next := 0
	take := func() NodeID { id := NodeID(next); next++; return id }

	// Plain colluding pairs.
	for i := 0; i < cfg.ColludingPairs; i++ {
		a, b := take(), take()
		t.Truth.ColludingPairs = append(t.Truth.ColludingPairs, [2]NodeID{a, b})
		plantMutual(r, t, cfg, a, b)
	}
	// Chain users: c pairs with both a and b, but a and b never pair.
	for i := 0; i < cfg.ChainUsers; i++ {
		a, c, b := take(), take(), take()
		t.Truth.ColludingPairs = append(t.Truth.ColludingPairs, [2]NodeID{a, c}, [2]NodeID{c, b})
		plantMutual(r, t, cfg, a, c)
		plantMutual(r, t, cfg, c, b)
	}

	// Organic transactions across the full population.
	for i := 0; i < cfg.OrganicTransactions; i++ {
		buyer := NodeID(r.Intn(cfg.Users))
		seller := NodeID(r.Intn(cfg.Users))
		for seller == buyer {
			seller = NodeID(r.Intn(cfg.Users))
		}
		day := r.Intn(cfg.Days)
		t.Ratings = append(t.Ratings, Rating{
			Day: day, Rater: buyer, Target: seller, Score: organicMutualScore(r, cfg.PositiveProb),
		})
		if r.Bool(cfg.MutualRatingProb) {
			t.Ratings = append(t.Ratings, Rating{
				Day: day, Rater: seller, Target: buyer, Score: organicMutualScore(r, cfg.PositiveProb),
			})
		}
	}

	t.SortByDay()
	return t, nil
}

// plantMutual adds high-frequency 5-star ratings in both directions of a
// colluding pair.
func plantMutual(r *rng.Rand, t *Trace, cfg OverstockConfig, a, b NodeID) {
	for _, dir := range [2][2]NodeID{{a, b}, {b, a}} {
		n := scaleFrequency(r, cfg.ColluderRatingsPerYear, cfg.Days)
		for k := 0; k < n; k++ {
			t.Ratings = append(t.Ratings, Rating{
				Day: r.Intn(cfg.Days), Rater: dir[0], Target: dir[1], Score: 5,
			})
		}
	}
}

func organicMutualScore(r *rng.Rand, positiveProb float64) Score {
	u := r.Float64()
	switch {
	case u < positiveProb:
		if r.Bool(0.8) {
			return 5
		}
		return 4
	case u < positiveProb+(1-positiveProb)*0.2:
		return 3
	default:
		if r.Bool(0.5) {
			return 1
		}
		return 2
	}
}

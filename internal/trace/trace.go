// Package trace models transaction-rating traces and generates synthetic
// ones shaped like the crawls analysed in Section III of the paper.
//
// The paper studies two proprietary datasets: one year of Amazon book-seller
// ratings (about 2.1 million ratings for 97 sellers) and one year of
// Overstock Auctions ratings (about 100,000 users, 450,000 transactions).
// Those crawls are not publicly available, so this package provides
// generators that reproduce the statistical signatures the paper reports —
// the rating-frequency separation between colluding and normal pairs
// (up to ~55/year vs ~15/year max, average 1/year), the score polarity of
// boosters and rivals, the reputation-band structure of sellers, and the
// pairwise interaction structure of suspected colluders — while keeping
// the planted ground truth so detection quality can be scored.
package trace

import (
	"fmt"
	"sort"
)

// NodeID identifies a participant (buyer, seller, or peer) in a trace.
type NodeID int

// Score is a raw feedback score on the Amazon 1..5 scale.
type Score int

// Valid reports whether the score is on the 1..5 scale.
func (s Score) Valid() bool { return s >= 1 && s <= 5 }

// Polarity maps a raw score to the paper's three-valued rating:
// scores 1 and 2 are negative (-1), 3 is neutral (0), 4 and 5 positive (+1).
func (s Score) Polarity() int {
	switch {
	case s <= 2:
		return -1
	case s == 3:
		return 0
	default:
		return 1
	}
}

// DaysPerYear is the length of the observation period used throughout the
// paper's trace analysis; thresholds such as T_N = 20/year refer to it.
const DaysPerYear = 365

// Rating is a single feedback event: rater scored target on a given day
// (days count from the start of the observation window).
type Rating struct {
	Day    int
	Rater  NodeID
	Target NodeID
	Score  Score
}

// Trace is an ordered collection of ratings plus the planted ground truth
// of the generator that produced it (empty for ingested real traces).
type Trace struct {
	Ratings []Rating
	Truth   GroundTruth
}

// GroundTruth records what the generator planted, for scoring detectors.
type GroundTruth struct {
	// ColludingPairs lists mutually boosting pairs (Overstock-style traces).
	ColludingPairs [][2]NodeID
	// Boosters maps a seller to the raters planted to inflate it
	// (Amazon-style traces, where sellers do not rate back).
	Boosters map[NodeID][]NodeID
	// Rivals maps a seller to the raters planted to deflate it.
	Rivals map[NodeID][]NodeID
}

// IsColludingPair reports whether {a, b} is a planted colluding pair, in
// either orientation.
func (g GroundTruth) IsColludingPair(a, b NodeID) bool {
	for _, p := range g.ColludingPairs {
		if (p[0] == a && p[1] == b) || (p[0] == b && p[1] == a) {
			return true
		}
	}
	return false
}

// IsBooster reports whether rater was planted to boost seller.
func (g GroundTruth) IsBooster(seller, rater NodeID) bool {
	for _, r := range g.Boosters[seller] {
		if r == rater {
			return true
		}
	}
	return false
}

// Len returns the number of ratings in the trace.
func (t *Trace) Len() int { return len(t.Ratings) }

// SortByDay orders ratings chronologically (stable within a day).
func (t *Trace) SortByDay() {
	sort.SliceStable(t.Ratings, func(i, j int) bool {
		return t.Ratings[i].Day < t.Ratings[j].Day
	})
}

// Targets returns the distinct targets appearing in the trace, ascending.
func (t *Trace) Targets() []NodeID {
	return t.distinct(func(r Rating) NodeID { return r.Target })
}

// Raters returns the distinct raters appearing in the trace, ascending.
func (t *Trace) Raters() []NodeID {
	return t.distinct(func(r Rating) NodeID { return r.Rater })
}

func (t *Trace) distinct(key func(Rating) NodeID) []NodeID {
	seen := make(map[NodeID]bool)
	for _, r := range t.Ratings {
		seen[key(r)] = true
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForTarget returns the ratings received by target, in trace order.
func (t *Trace) ForTarget(target NodeID) []Rating {
	var out []Rating
	for _, r := range t.Ratings {
		if r.Target == target {
			out = append(out, r)
		}
	}
	return out
}

// Reputation computes a target's reputation by the Amazon formula used in
// Section III: positives divided by the total number of ratings. The second
// return is false when the target received no ratings.
func (t *Trace) Reputation(target NodeID) (float64, bool) {
	pos, total := 0, 0
	for _, r := range t.Ratings {
		if r.Target != target {
			continue
		}
		total++
		if r.Score.Polarity() > 0 {
			pos++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(pos) / float64(total), true
}

// PairCounts tallies, for every (rater, target) pair, how many ratings and
// how many positive ratings the rater gave the target.
type PairCounts struct {
	Total    int
	Positive int
	Negative int
	Neutral  int
}

// Pair identifies a directed rater→target relationship.
type Pair struct {
	Rater, Target NodeID
}

// CountPairs aggregates per-directed-pair rating counts for the whole trace.
func (t *Trace) CountPairs() map[Pair]PairCounts {
	out := make(map[Pair]PairCounts)
	for _, r := range t.Ratings {
		p := Pair{r.Rater, r.Target}
		c := out[p]
		c.Total++
		switch r.Score.Polarity() {
		case 1:
			c.Positive++
		case -1:
			c.Negative++
		default:
			c.Neutral++
		}
		out[p] = c
	}
	return out
}

// Validate checks structural well-formedness: scores on the 1..5 scale,
// non-negative days, and no self-ratings. It returns the first problem found.
func (t *Trace) Validate() error {
	for i, r := range t.Ratings {
		if !r.Score.Valid() {
			return fmt.Errorf("trace: rating %d has score %d outside 1..5", i, r.Score)
		}
		if r.Day < 0 {
			return fmt.Errorf("trace: rating %d has negative day %d", i, r.Day)
		}
		if r.Rater == r.Target {
			return fmt.Errorf("trace: rating %d is a self-rating by node %d", i, r.Rater)
		}
	}
	return nil
}

package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestScorePolarity(t *testing.T) {
	cases := []struct {
		score Score
		want  int
	}{
		{1, -1}, {2, -1}, {3, 0}, {4, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := c.score.Polarity(); got != c.want {
			t.Errorf("Score(%d).Polarity() = %d, want %d", c.score, got, c.want)
		}
	}
}

func TestScoreValid(t *testing.T) {
	for s := Score(-1); s <= 7; s++ {
		want := s >= 1 && s <= 5
		if got := s.Valid(); got != want {
			t.Errorf("Score(%d).Valid() = %v, want %v", s, got, want)
		}
	}
}

func TestReputationFormula(t *testing.T) {
	// Amazon formula: positives / all ratings (neutral counts in denominator).
	tr := &Trace{Ratings: []Rating{
		{Day: 0, Rater: 10, Target: 1, Score: 5},
		{Day: 1, Rater: 11, Target: 1, Score: 4},
		{Day: 2, Rater: 12, Target: 1, Score: 3},
		{Day: 3, Rater: 13, Target: 1, Score: 1},
		{Day: 4, Rater: 14, Target: 2, Score: 5},
	}}
	rep, ok := tr.Reputation(1)
	if !ok {
		t.Fatal("Reputation(1) reported no ratings")
	}
	if want := 2.0 / 4.0; rep != want {
		t.Fatalf("Reputation(1) = %v, want %v", rep, want)
	}
	if _, ok := tr.Reputation(99); ok {
		t.Fatal("Reputation(99) should report no ratings")
	}
}

func TestTargetsAndRaters(t *testing.T) {
	tr := &Trace{Ratings: []Rating{
		{Rater: 5, Target: 2, Score: 5},
		{Rater: 3, Target: 2, Score: 4},
		{Rater: 5, Target: 1, Score: 1},
	}}
	targets := tr.Targets()
	if len(targets) != 2 || targets[0] != 1 || targets[1] != 2 {
		t.Fatalf("Targets() = %v", targets)
	}
	raters := tr.Raters()
	if len(raters) != 2 || raters[0] != 3 || raters[1] != 5 {
		t.Fatalf("Raters() = %v", raters)
	}
}

func TestCountPairs(t *testing.T) {
	tr := &Trace{Ratings: []Rating{
		{Rater: 1, Target: 2, Score: 5},
		{Rater: 1, Target: 2, Score: 1},
		{Rater: 1, Target: 2, Score: 3},
		{Rater: 2, Target: 1, Score: 4},
	}}
	pairs := tr.CountPairs()
	c := pairs[Pair{1, 2}]
	if c.Total != 3 || c.Positive != 1 || c.Negative != 1 || c.Neutral != 1 {
		t.Fatalf("pair (1,2) counts = %+v", c)
	}
	if pairs[Pair{2, 1}].Total != 1 {
		t.Fatalf("pair (2,1) counts = %+v", pairs[Pair{2, 1}])
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		r    Rating
		want string
	}{
		{"bad score", Rating{Day: 0, Rater: 1, Target: 2, Score: 9}, "score"},
		{"negative day", Rating{Day: -1, Rater: 1, Target: 2, Score: 4}, "day"},
		{"self rating", Rating{Day: 0, Rater: 1, Target: 1, Score: 4}, "self-rating"},
	}
	for _, c := range cases {
		tr := &Trace{Ratings: []Rating{c.r}}
		err := tr.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want mention of %q", c.name, err, c.want)
		}
	}
	good := &Trace{Ratings: []Rating{{Day: 3, Rater: 1, Target: 2, Score: 4}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestSortByDay(t *testing.T) {
	tr := &Trace{Ratings: []Rating{
		{Day: 5, Rater: 1, Target: 2, Score: 4},
		{Day: 1, Rater: 3, Target: 2, Score: 4},
		{Day: 3, Rater: 4, Target: 2, Score: 4},
	}}
	tr.SortByDay()
	for i := 1; i < len(tr.Ratings); i++ {
		if tr.Ratings[i-1].Day > tr.Ratings[i].Day {
			t.Fatalf("not sorted at %d: %+v", i, tr.Ratings)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := &Trace{Ratings: []Rating{
		{Day: 0, Rater: 100, Target: 1, Score: 5},
		{Day: 42, Rater: 101, Target: 2, Score: 1},
		{Day: 364, Rater: 102, Target: 1, Score: 3},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ratings) != len(orig.Ratings) {
		t.Fatalf("round trip lost ratings: %d != %d", len(got.Ratings), len(orig.Ratings))
	}
	for i := range got.Ratings {
		if got.Ratings[i] != orig.Ratings[i] {
			t.Fatalf("rating %d mismatch: %+v != %+v", i, got.Ratings[i], orig.Ratings[i])
		}
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b,c,d\n1,2,3,4\n"))
	if err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestReadCSVRejectsBadRow(t *testing.T) {
	in := "day,rater,target,score\nnotanumber,2,3,4\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Fatal("bad day value accepted")
	}
	in = "day,rater,target,score\n1,2,3,9\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Fatal("out-of-range score accepted")
	}
}

// Property: any structurally valid trace survives a CSV round trip intact.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(days []uint8, raters, targets []uint16, scores []uint8) bool {
		n := len(days)
		for _, s := range [][]int{{len(raters)}, {len(targets)}, {len(scores)}} {
			if s[0] < n {
				n = s[0]
			}
		}
		tr := &Trace{}
		for i := 0; i < n; i++ {
			rater := NodeID(raters[i])
			target := NodeID(targets[i])
			if rater == target {
				target++
			}
			tr.Ratings = append(tr.Ratings, Rating{
				Day:    int(days[i]),
				Rater:  rater,
				Target: target,
				Score:  Score(int(scores[i])%5 + 1),
			})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(got.Ratings) != len(tr.Ratings) {
			return false
		}
		for i := range got.Ratings {
			if got.Ratings[i] != tr.Ratings[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGroundTruthHelpers(t *testing.T) {
	g := GroundTruth{
		ColludingPairs: [][2]NodeID{{1, 2}},
		Boosters:       map[NodeID][]NodeID{10: {20, 21}},
	}
	if !g.IsColludingPair(1, 2) || !g.IsColludingPair(2, 1) {
		t.Fatal("IsColludingPair missed planted pair")
	}
	if g.IsColludingPair(1, 3) {
		t.Fatal("IsColludingPair invented a pair")
	}
	if !g.IsBooster(10, 20) || g.IsBooster(10, 99) || g.IsBooster(11, 20) {
		t.Fatal("IsBooster wrong")
	}
}

func TestAmazonGeneratorReproducible(t *testing.T) {
	cfg := smallAmazonConfig()
	a, err := GenerateAmazon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateAmazon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ratings) != len(b.Ratings) {
		t.Fatalf("same seed produced %d vs %d ratings", len(a.Ratings), len(b.Ratings))
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("same seed diverged at rating %d", i)
		}
	}
}

func TestAmazonGeneratorSeedSensitivity(t *testing.T) {
	cfg := smallAmazonConfig()
	a, _ := GenerateAmazon(cfg)
	cfg.Seed = 999
	b, _ := GenerateAmazon(cfg)
	if len(a.Ratings) == len(b.Ratings) {
		same := true
		for i := range a.Ratings {
			if a.Ratings[i] != b.Ratings[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func smallAmazonConfig() AmazonConfig {
	cfg := DefaultAmazonConfig()
	cfg.Bands = []SellerBand{
		{Reputation: 0.98, Count: 3, MeanDailyRatings: 2},
		{Reputation: 0.95, Count: 4, MeanDailyRatings: 1.5},
		{Reputation: 0.88, Count: 3, MeanDailyRatings: 1},
		{Reputation: 0.67, Count: 2, MeanDailyRatings: 0.3},
	}
	cfg.SuspiciousSellers = 3
	return cfg
}

func TestAmazonGeneratorStructure(t *testing.T) {
	cfg := smallAmazonConfig()
	at, err := GenerateAmazon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := at.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if got, want := len(at.Sellers), 12; got != want {
		t.Fatalf("sellers = %d, want %d", got, want)
	}
	suspicious := 0
	for _, s := range at.Sellers {
		if s.Suspicious {
			suspicious++
			if s.Band < 0.94 || s.Band > 0.97 {
				t.Errorf("suspicious seller %d in band %v, want [0.94, 0.97]", s.ID, s.Band)
			}
		}
	}
	if suspicious != cfg.SuspiciousSellers {
		t.Fatalf("suspicious sellers = %d, want %d", suspicious, cfg.SuspiciousSellers)
	}

	// Every suspicious seller must have planted boosters whose rating counts
	// are at or above the paper's 20/year suspicion line, while organic
	// buyer-seller pairs stay below the NormalRepeatMax cap.
	pairs := at.CountPairs()
	for seller, boosters := range at.Truth.Boosters {
		if len(boosters) != cfg.BoostersPerSeller {
			t.Fatalf("seller %d has %d boosters, want %d", seller, len(boosters), cfg.BoostersPerSeller)
		}
		for _, b := range boosters {
			c := pairs[Pair{b, seller}]
			if c.Total < cfg.BoosterRatingsPerYear[0]*cfg.Days/DaysPerYear {
				t.Errorf("booster %d→%d has only %d ratings", b, seller, c.Total)
			}
			if c.Positive != c.Total {
				t.Errorf("booster %d→%d gave non-positive ratings", b, seller)
			}
		}
	}
	for seller, rivals := range at.Truth.Rivals {
		for _, v := range rivals {
			c := pairs[Pair{v, seller}]
			if c.Negative != c.Total {
				t.Errorf("rival %d→%d gave non-negative ratings", v, seller)
			}
		}
	}
	for p, c := range pairs {
		if at.Truth.IsBooster(p.Target, p.Rater) {
			continue
		}
		isRival := false
		for _, v := range at.Truth.Rivals[p.Target] {
			if v == p.Rater {
				isRival = true
			}
		}
		if isRival {
			continue
		}
		if c.Total > cfg.NormalRepeatMax {
			t.Errorf("organic pair %v has %d ratings, above cap %d", p, c.Total, cfg.NormalRepeatMax)
		}
	}
}

func TestAmazonReputationCalibration(t *testing.T) {
	cfg := smallAmazonConfig()
	cfg.SuspiciousSellers = 0 // measure organic calibration only
	at, err := GenerateAmazon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range at.Sellers {
		rep, ok := at.Reputation(s.ID)
		if !ok {
			continue
		}
		if math.Abs(rep-s.Band) > 0.08 {
			t.Errorf("seller %d reputation %v far from band target %v", s.ID, rep, s.Band)
		}
	}
}

func TestAmazonConfigValidation(t *testing.T) {
	bad := []func(*AmazonConfig){
		func(c *AmazonConfig) { c.Days = 0 },
		func(c *AmazonConfig) { c.Bands = nil },
		func(c *AmazonConfig) { c.Bands[0].Reputation = 1.5 },
		func(c *AmazonConfig) { c.Bands[0].Count = 0 },
		func(c *AmazonConfig) { c.Bands[0].MeanDailyRatings = -1 },
		func(c *AmazonConfig) { c.SuspiciousSellers = 10000 },
		func(c *AmazonConfig) { c.BoosterRatingsPerYear = [2]int{50, 20} },
		func(c *AmazonConfig) { c.RivalRatingsPerYear = [2]int{50, 20} },
		func(c *AmazonConfig) { c.NormalRepeatMax = 0 },
		func(c *AmazonConfig) { c.RepeatBuyerProb = 2 },
	}
	for i, mutate := range bad {
		cfg := DefaultAmazonConfig()
		mutate(&cfg)
		if _, err := GenerateAmazon(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestOverstockGeneratorReproducible(t *testing.T) {
	cfg := smallOverstockConfig()
	a, err := GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ratings) != len(b.Ratings) {
		t.Fatalf("same seed produced different sizes")
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("same seed diverged at rating %d", i)
		}
	}
}

func smallOverstockConfig() OverstockConfig {
	cfg := DefaultOverstockConfig()
	cfg.Users = 300
	cfg.OrganicTransactions = 1500
	cfg.ColludingPairs = 5
	cfg.ChainUsers = 2
	return cfg
}

func TestOverstockGeneratorStructure(t *testing.T) {
	cfg := smallOverstockConfig()
	tr, err := GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	wantPairs := cfg.ColludingPairs + 2*cfg.ChainUsers
	if got := len(tr.Truth.ColludingPairs); got != wantPairs {
		t.Fatalf("planted pairs = %d, want %d", got, wantPairs)
	}

	pairs := tr.CountPairs()
	minPlanted := cfg.ColluderRatingsPerYear[0] * cfg.Days / DaysPerYear
	for _, p := range tr.Truth.ColludingPairs {
		for _, dir := range [][2]NodeID{{p[0], p[1]}, {p[1], p[0]}} {
			c := pairs[Pair{dir[0], dir[1]}]
			if c.Total < minPlanted {
				t.Errorf("planted pair %v→%v has only %d ratings, want >= %d",
					dir[0], dir[1], c.Total, minPlanted)
			}
		}
	}

	// Chain users pair with two partners but those partners never pair with
	// each other: the planted structure must stay pairwise (C5).
	partners := map[NodeID][]NodeID{}
	for _, p := range tr.Truth.ColludingPairs {
		partners[p[0]] = append(partners[p[0]], p[1])
		partners[p[1]] = append(partners[p[1]], p[0])
	}
	multi := 0
	for _, ps := range partners {
		if len(ps) == 2 {
			multi++
			if tr.Truth.IsColludingPair(ps[0], ps[1]) {
				t.Error("chain partners form a closed triangle, violating C5")
			}
		}
	}
	if multi != cfg.ChainUsers {
		t.Fatalf("chain users with two partners = %d, want %d", multi, cfg.ChainUsers)
	}
}

func TestOverstockOrganicPairsBelowThreshold(t *testing.T) {
	cfg := smallOverstockConfig()
	tr, err := GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	planted := map[Pair]bool{}
	for _, p := range tr.Truth.ColludingPairs {
		planted[Pair{p[0], p[1]}] = true
		planted[Pair{p[1], p[0]}] = true
	}
	// The Figure 1(d) edge threshold is 20 ratings; organic pairs must stay
	// well below it or the figure would be pure noise.
	for p, c := range tr.CountPairs() {
		if planted[p] {
			continue
		}
		if c.Total >= 20 {
			t.Fatalf("organic pair %v reached %d ratings", p, c.Total)
		}
	}
}

func TestOverstockConfigValidation(t *testing.T) {
	bad := []func(*OverstockConfig){
		func(c *OverstockConfig) { c.Days = 0 },
		func(c *OverstockConfig) { c.Users = 1 },
		func(c *OverstockConfig) { c.OrganicTransactions = -1 },
		func(c *OverstockConfig) { c.MutualRatingProb = -0.1 },
		func(c *OverstockConfig) { c.PositiveProb = 1.1 },
		func(c *OverstockConfig) { c.Users = 5; c.ColludingPairs = 10 },
		func(c *OverstockConfig) { c.ColluderRatingsPerYear = [2]int{50, 20} },
		func(c *OverstockConfig) { c.ColluderRatingsPerYear = [2]int{0, 5} },
	}
	for i, mutate := range bad {
		cfg := DefaultOverstockConfig()
		mutate(&cfg)
		if _, err := GenerateOverstock(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	if err := DefaultAmazonConfig().Validate(); err != nil {
		t.Errorf("DefaultAmazonConfig invalid: %v", err)
	}
	if err := DefaultOverstockConfig().Validate(); err != nil {
		t.Errorf("DefaultOverstockConfig invalid: %v", err)
	}
}

func BenchmarkGenerateAmazonSmall(b *testing.B) {
	cfg := smallAmazonConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateAmazon(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountPairs(b *testing.B) {
	at, err := GenerateAmazon(smallAmazonConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at.CountPairs()
	}
}
